"""Tests for the repro.devtools static-analysis suite.

One fixture triple per rule — a positive hit, the same hit suppressed with a
reason, and clean code — plus a self-scan asserting the repo stays clean
modulo the committed baseline.  Fixture files live in a temp directory, which
is outside any ``repro`` package, so every rule applies to them (see
``repro.devtools.scopes``).
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.devtools import Baseline, all_rules, lint_paths
from repro.devtools.baseline import BaselineError

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
BASELINE = REPO_ROOT / "devtools-baseline.json"


def lint_snippet(tmp_path: Path, source: str, name: str = "snippet.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_paths([path])


def rule_hits(report, rule_id: str):
    return [f for f in report.findings if f.rule == rule_id]


# ---------------------------------------------------------------------------
# det-set-iter
# ---------------------------------------------------------------------------


def test_set_iter_positive(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        def drain(pending: set) -> list:
            out = []
            for item in pending:
                out.append(item)
            return out
        """,
    )
    assert len(rule_hits(report, "det-set-iter")) == 1


def test_set_iter_detects_literals_and_wrappers(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        def f(xs):
            a = [x for x in {1, 2, 3}]
            b = list(set(xs))
            return a, b
        """,
    )
    assert len(rule_hits(report, "det-set-iter")) == 2


def test_set_iter_self_attribute(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        class Engine:
            def __init__(self):
                self._active = set()

            def tick(self):
                for idx in self._active:
                    print(idx)
        """,
    )
    assert len(rule_hits(report, "det-set-iter")) == 1


def test_set_iter_suppressed_with_reason(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        def drain(pending: set) -> int:
            total = 0
            for item in pending:  # devtools: ignore[det-set-iter] order-insensitive sum
                total += item
            return total
        """,
    )
    assert not rule_hits(report, "det-set-iter")
    assert len(report.suppressed) == 1


def test_set_iter_clean_sorted_and_membership(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        def f(pending: set, key) -> list:
            if key in pending:          # membership: fine
                return sorted(pending)  # ordered iteration: fine
            return [len(pending), sum(pending), min(pending)]
        """,
    )
    assert not rule_hits(report, "det-set-iter")


# ---------------------------------------------------------------------------
# det-set-pop
# ---------------------------------------------------------------------------


def test_set_pop_positive(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        def take(work: set):
            first = next(iter(work))
            second = work.pop()
            return first, second
        """,
    )
    assert len(rule_hits(report, "det-set-pop")) == 2


def test_set_pop_clean_on_lists(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        def take(work: list):
            return work.pop(), next(iter(work))
        """,
    )
    assert not rule_hits(report, "det-set-pop")


# ---------------------------------------------------------------------------
# det-id-order
# ---------------------------------------------------------------------------


def test_id_order_positive(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        def f(routers, table):
            ordered = sorted(routers, key=id)
            table[id(routers[0])] = 1
            mapping = {id(r): r for r in routers}
            return ordered, mapping
        """,
    )
    assert len(rule_hits(report, "det-id-order")) >= 3


def test_id_order_allows_messages(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        def f(obj):
            raise RuntimeError(f"object {id(obj):#x} misbehaved")
        """,
    )
    assert not rule_hits(report, "det-id-order")


# ---------------------------------------------------------------------------
# det-unseeded-random
# ---------------------------------------------------------------------------


def test_unseeded_random_positive(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        import random

        def pick(xs, rng=None):
            rng = rng if rng is not None else random
            return xs[random.randrange(len(xs))]
        """,
    )
    # One hit for the bare-module fallback, one for random.randrange.
    assert len(rule_hits(report, "det-unseeded-random")) == 2


def test_unseeded_random_from_import(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        from random import choice

        def pick(xs):
            return choice(xs)
        """,
    )
    assert len(rule_hits(report, "det-unseeded-random")) == 1


def test_seeded_random_clean(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        import random

        class Sim:
            def __init__(self, seed: int):
                self.rng = random.Random(seed)

            def pick(self, xs):
                return xs[self.rng.randrange(len(xs))]
        """,
    )
    assert not rule_hits(report, "det-unseeded-random")


# ---------------------------------------------------------------------------
# det-wallclock / det-env-read
# ---------------------------------------------------------------------------


def test_wallclock_positive(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        import time, uuid, os

        def stamp():
            return time.time(), time.perf_counter(), uuid.uuid4(), os.urandom(8)
        """,
    )
    assert len(rule_hits(report, "det-wallclock")) == 4


def test_env_read_positive_and_suppression(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        import os

        FLAG = os.environ.get("REPRO_FLAG")
        # devtools: ignore[det-env-read] read once at import, recorded in provenance
        OTHER = os.getenv("REPRO_OTHER")
        """,
    )
    assert len(rule_hits(report, "det-env-read")) == 1
    assert len(report.suppressed) == 1


# ---------------------------------------------------------------------------
# hot-probe-guard
# ---------------------------------------------------------------------------


def test_probe_guard_positive(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        class Router:
            def deliver(self, packet):
                self.on_injection(packet)
        """,
    )
    assert len(rule_hits(report, "hot-probe-guard")) == 1


def test_probe_guard_truthiness_rejected(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        class Router:
            def deliver(self, packet):
                if self.on_injection:
                    self.on_injection(packet)
        """,
    )
    assert len(rule_hits(report, "hot-probe-guard")) == 1


def test_probe_guard_direct_guard_clean(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        class Router:
            def deliver(self, packet):
                if self.on_injection is not None:
                    self.on_injection(packet)
        """,
    )
    assert not rule_hits(report, "hot-probe-guard")


def test_probe_guard_local_alias_clean(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        class Router:
            def sample(self, port, value):
                on_occupancy = port.on_occupancy
                if on_occupancy is not None:
                    on_occupancy(port, value)
        """,
    )
    assert not rule_hits(report, "hot-probe-guard")


def test_probe_guard_and_chain_clean(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        class Router:
            def deliver(self, packet, ready):
                if ready and self.on_stall is not None:
                    self.on_stall(packet)
        """,
    )
    assert not rule_hits(report, "hot-probe-guard")


# ---------------------------------------------------------------------------
# hot-slots
# ---------------------------------------------------------------------------


def test_slots_positive(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        class Flit:
            def __init__(self, uid):
                self.uid = uid
        """,
    )
    assert len(rule_hits(report, "hot-slots")) == 1


def test_slots_clean_variants(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        from dataclasses import dataclass

        class Flit:
            __slots__ = ("uid",)

            def __init__(self, uid):
                self.uid = uid

        @dataclass(slots=True)
        class Credit:
            count: int

        class BufferError(ValueError):
            pass
        """,
    )
    assert not rule_hits(report, "hot-slots")


# ---------------------------------------------------------------------------
# hot-no-deque
# ---------------------------------------------------------------------------


def test_no_deque_positive(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        from collections import deque

        def make_fifo():
            return deque()
        """,
    )
    assert len(rule_hits(report, "hot-no-deque")) == 2  # import + construction


def test_no_deque_clean_list_fifo(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        def make_fifo():
            return []
        """,
    )
    assert not rule_hits(report, "hot-no-deque")


# ---------------------------------------------------------------------------
# mem-unbounded-memo
# ---------------------------------------------------------------------------


def test_unbounded_memo_positive(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        _ROUTE_MEMO = {}

        class Algo:
            def __init__(self):
                self._plan_cache = {}
        """,
    )
    assert len(rule_hits(report, "mem-unbounded-memo")) == 2


def test_unbounded_memo_cap_guard_clean(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        _MEMO_CAP = 1 << 18

        class Algo:
            def __init__(self):
                self._plan_memo = {}

            def plan(self, key):
                if len(self._plan_memo) >= _MEMO_CAP:
                    self._plan_memo.clear()
                return self._plan_memo.setdefault(key, key)
        """,
    )
    assert not rule_hits(report, "mem-unbounded-memo")


def test_unbounded_memo_suppressed_with_reason(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        # devtools: unbounded-ok(keyed by node id: at most n entries)
        _NODE_MEMO = {}
        """,
    )
    assert not rule_hits(report, "mem-unbounded-memo")
    assert len(report.suppressed) == 1


# ---------------------------------------------------------------------------
# meta-bare-suppression
# ---------------------------------------------------------------------------


def test_bare_suppression_flagged(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        # devtools: unbounded-ok()
        _NODE_MEMO = {}

        def f(pending: set):
            for item in pending:  # devtools: ignore[det-set-iter]
                print(item)
        """,
    )
    assert len(rule_hits(report, "meta-bare-suppression")) == 2


def test_reasoned_suppression_not_flagged(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        # devtools: unbounded-ok(bounded by construction)
        _NODE_MEMO = {}
        """,
    )
    assert not rule_hits(report, "meta-bare-suppression")


# ---------------------------------------------------------------------------
# framework behaviour
# ---------------------------------------------------------------------------


def test_rules_registered_and_documented():
    rules = all_rules()
    assert len(rules) >= 8
    for rule in rules:
        assert rule.id and rule.summary and rule.doc


def test_parse_error_reported_not_raised(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n", encoding="utf-8")
    report = lint_paths([bad])
    assert report.parse_errors and not report.clean


def test_baseline_roundtrip_and_filter(tmp_path):
    source = tmp_path / "old.py"
    source.write_text("_ROUTE_MEMO = {}\n", encoding="utf-8")
    report = lint_paths([source])
    assert report.findings
    baseline_path = tmp_path / "baseline.json"
    Baseline.from_findings(report.findings).dump(baseline_path)
    rebaselined = lint_paths([source], baseline=Baseline.load(baseline_path))
    assert not rebaselined.findings
    assert rebaselined.baseline_matched == len(report.findings)


def test_baseline_errors_are_clear(tmp_path):
    with pytest.raises(BaselineError, match="not found"):
        Baseline.load(tmp_path / "missing.json")
    bad = tmp_path / "bad.json"
    bad.write_text("{not json", encoding="utf-8")
    with pytest.raises(BaselineError, match="not JSON"):
        Baseline.load(bad)


# ---------------------------------------------------------------------------
# CLI + self-scan
# ---------------------------------------------------------------------------


def _run_cli(*args, cwd=REPO_ROOT):
    env_src = str(SRC)
    return subprocess.run(
        [sys.executable, "-m", "repro.devtools", *args],
        cwd=cwd,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin"},
    )


def test_self_scan_repo_clean_modulo_baseline():
    """The committed tree must lint clean against the committed baseline."""
    baseline = Baseline.load(BASELINE)
    report = lint_paths([SRC], baseline=baseline, root=REPO_ROOT)
    assert report.clean, "\n".join(f.render() for f in report.findings)
    # Acceptance bar: no baseline entries in hot modules at all.
    for fingerprint in baseline.entries:
        path = fingerprint.split("::", 1)[0]
        assert not any(
            seg in path for seg in ("engine", "/router/", "/routing/")
        ), f"hot-module baseline entry not allowed: {fingerprint}"


def test_cli_lint_exit_codes(tmp_path):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("_ROUTE_MEMO = {}\n", encoding="utf-8")
    clean = tmp_path / "clean.py"
    clean.write_text("X = 1\n", encoding="utf-8")

    result = _run_cli("lint", str(clean))
    assert result.returncode == 0, result.stderr

    result = _run_cli("lint", str(dirty))
    assert result.returncode == 1
    assert "mem-unbounded-memo" in result.stdout

    result = _run_cli("lint", str(tmp_path / "nope"))
    assert result.returncode == 2

    result = _run_cli("lint", str(dirty), "--baseline", str(tmp_path / "nope.json"))
    assert result.returncode == 2
    assert "baseline" in result.stderr


def test_cli_json_format(tmp_path):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("_ROUTE_MEMO = {}\n", encoding="utf-8")
    result = _run_cli("lint", str(dirty), "--format", "json")
    payload = json.loads(result.stdout)
    assert payload["clean"] is False
    assert payload["findings"][0]["rule"] == "mem-unbounded-memo"


def test_cli_rules_listing():
    result = _run_cli("rules")
    assert result.returncode == 0
    assert "det-set-iter" in result.stdout
    assert "hot-probe-guard" in result.stdout
