"""Sweep-scale execution tests: artifact cache, chunking, adaptive, converge.

The contract under test (ISSUE 5 acceptance criteria):

* default-mode sweeps are **bit-identical** to per-job fresh-build execution
  at any worker count and chunk size — chunked dispatch and artifact reuse
  are execution-strategy changes only;
* interrupted sweeps resume from the store without recomputing anything
  already persisted, chunking included;
* adaptive scheduling and convergence-window measurement are opt-in, flag
  their provenance, and never pollute the default cache namespace.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.config import SimulationConfig
from repro.experiments.orchestrator import (
    EXTRAPOLATED_KEY_SUFFIX,
    AdaptiveSettings,
    ArtifactCache,
    Job,
    ResultStore,
    SweepSpec,
    config_key,
    network_key,
    run_jobs,
    run_sweep,
    store_key,
)
from repro.metrics import SimulationResult
from repro.router.saturation import is_saturated_point
from repro.session import ConvergenceSettings, Session, _relative_half_width
from repro.simulation import Simulation, build_artifacts


def make_config(**overrides) -> SimulationConfig:
    base = SimulationConfig(warmup_cycles=150, measure_cycles=300)
    return dataclasses.replace(base, **overrides)


def build_config() -> SimulationConfig:
    return make_config()


def make_result(offered: float, accepted: float, deadlock: bool = False) -> SimulationResult:
    return SimulationResult(
        offered_load=offered,
        accepted_load=accepted,
        average_latency=100.0,
        latency_p99=200.0,
        packets_delivered=10,
        packets_generated=12,
        phits_delivered=80,
        measured_cycles=300,
        num_nodes=72,
        misrouted_fraction=0.0,
        deadlock_suspected=deadlock,
    )


# ---------------------------------------------------------------------------
# Keys: single-pass expansion and network sub-hash
# ---------------------------------------------------------------------------

class TestKeys:
    def test_expand_keys_match_full_serialization(self):
        """The one-asdict-per-series fast path must agree with config_key."""
        from repro.config import NetworkConfig
        from repro.core.arrangement import VcArrangement

        def hyperx_flexvc() -> SimulationConfig:
            return make_config(
                network=NetworkConfig(topology="hyperx", params={"s": (4, 3, 3)}),
                routing=dataclasses.replace(
                    make_config().routing, vc_policy="flexvc", algorithm="val"
                ),
                arrangement=VcArrangement.single_class(4, 2),
            )

        spec = SweepSpec(
            series=[("df", build_config), ("hx", hyperx_flexvc)],
            loads=[0.1, 0.35],
            seeds=2,
        )
        for job in spec.expand():
            assert job.key == config_key(job.config)
            assert job.network_key == network_key(job.config)

    def test_network_key_ignores_load_seed_traffic(self):
        a = make_config().with_load(0.1)
        b = make_config().with_load(0.9).with_seed(7)
        assert network_key(a) == network_key(b)
        assert config_key(a) != config_key(b)

    def test_network_key_tracks_network_and_routing(self):
        base = make_config()
        other_routing = dataclasses.replace(
            base, routing=dataclasses.replace(base.routing, vc_selection="random")
        )
        assert network_key(base) != network_key(other_routing)

    def test_store_key_suffixes_convergence_mode(self):
        job = SweepSpec(series=[("s", build_config)], loads=[0.1]).expand()[0]
        assert store_key(job) == job.key
        converged = dataclasses.replace(job, converge=ConvergenceSettings())
        assert store_key(converged).startswith(job.key + ":cw")
        other = dataclasses.replace(
            job, converge=ConvergenceSettings(rel_tol=0.01)
        )
        assert store_key(converged) != store_key(other)


# ---------------------------------------------------------------------------
# Artifact cache correctness
# ---------------------------------------------------------------------------

class TestArtifactCache:
    def test_artifact_backed_runs_are_bit_identical(self):
        config = make_config().with_load(0.25)
        fresh = dataclasses.asdict(Simulation(config).run())
        artifacts = build_artifacts(config, network_key(config))
        for _ in range(2):  # reuse the same artifacts twice
            shared = dataclasses.asdict(
                Simulation(config, artifacts=artifacts).run()
            )
            assert shared == fresh

    def test_cache_reuses_and_evicts(self):
        cache = ArtifactCache(max_entries=2)
        configs = [
            make_config(),
            make_config(network=make_config().network.__class__(topology="fb")),
        ]
        keys = [network_key(c) for c in configs]
        first = cache.get(keys[0], configs[0])
        assert cache.get(keys[0], configs[0]) is first
        assert cache.counters() == (1, 1)
        cache.get(keys[1], configs[1])
        # Touch keys[0] so keys[1] becomes least-recently-used, then insert
        # a third key: keys[1] is evicted, keys[0] survives.
        cache.get(keys[0], configs[0])
        third = make_config(
            network=make_config().network.__class__(topology="hyperx",
                                                    params={"s": (4, 3)})
        )
        cache.get(network_key(third), third)
        assert cache.get(keys[0], configs[0]) is first  # still cached
        assert cache.counters() == (3, 3)
        cache.get(keys[1], configs[1])  # evicted -> rebuilt
        assert cache.counters() == (3, 4)

    def test_shared_topology_and_route_table_instances(self):
        a = build_artifacts(make_config(), "k")
        b = build_artifacts(make_config().with_load(0.9), "k")
        assert a.topology is b.topology
        assert a.route_table is b.route_table
        private = build_artifacts(make_config(), "k", cached=False)
        assert private.topology is not a.topology


# ---------------------------------------------------------------------------
# Chunked execution equivalence (the tentpole default-mode guarantee)
# ---------------------------------------------------------------------------

class TestChunkedEquivalence:
    SPEC = dict(loads=[0.15, 0.3], seeds=2)

    def _spec(self) -> SweepSpec:
        return SweepSpec(series=[("uniform", build_config)], **self.SPEC)

    def _store_payload(self, path) -> dict:
        """Store contents reduced to what must be invariant: key -> summary."""
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        return {
            key: entry["record"]["summary"]
            for key, entry in payload["results"].items()
        }

    def test_chunked_and_cached_matches_per_job_fresh_builds(self, tmp_path):
        """workers in {1, 4} x chunked/cached == the serial per-job path."""
        # Reference: per-job dispatch, fresh artifacts per simulation (the
        # pre-artifact-cache PR 4 behaviour).
        reference = {
            job.key: dataclasses.asdict(Simulation(job.config).run())
            for job in self._spec().expand()
        }
        payloads = {}
        for workers, chunk_size in ((1, None), (4, None), (4, 1), (1, 3)):
            path = str(tmp_path / f"store_{workers}_{chunk_size}.json")
            outcome = run_sweep(
                self._spec(), workers=workers, chunk_size=chunk_size,
                store=ResultStore(path),
            )
            assert outcome.executed == len(reference)
            for key, expected in reference.items():
                assert dataclasses.asdict(outcome.raw[key]) == expected
            payloads[(workers, chunk_size)] = self._store_payload(path)
        # Store contents (config keys + summaries) identical across modes.
        first = next(iter(payloads.values()))
        for payload in payloads.values():
            assert payload == first

    def test_resume_recomputes_nothing_stored(self, tmp_path, monkeypatch):
        """A killed chunked sweep resumes: stored points never re-execute."""
        path = str(tmp_path / "store.json")
        spec = self._spec()
        jobs = spec.expand()

        # Simulate the interruption: only half the sweep completed+flushed.
        half = len(jobs) // 2
        run_jobs(jobs[:half], workers=1, store=ResultStore(path))

        import repro.experiments.orchestrator as orch

        executed_keys = []
        original = orch._execute_job

        def spying_execute(job):
            executed_keys.append(job.key)
            return original(job)

        monkeypatch.setattr(orch, "_execute_job", spying_execute)
        outcome = run_sweep(spec, workers=1, store=ResultStore(path))
        assert outcome.cache_hits == half
        assert sorted(executed_keys) == sorted(j.key for j in jobs[half:])

    def test_flush_interval_zero_checkpoints_every_result(self, tmp_path):
        path = str(tmp_path / "store.json")
        store = ResultStore(path, flush_interval=0.0)
        sizes = []

        def on_progress(job, result):
            # The store flushed before the progress callback ran, so every
            # completed point is already on disk.
            sizes.append(len(ResultStore(path)))

        run_jobs(self._spec().expand(), workers=1, store=store, progress=on_progress)
        assert sizes == list(range(1, len(sizes) + 1))


# ---------------------------------------------------------------------------
# Saturation-point detection
# ---------------------------------------------------------------------------

class TestSaturationPoint:
    def test_accepted_tracks_offered_is_not_saturated(self):
        assert not is_saturated_point(make_result(0.4, 0.39))

    def test_large_shortfall_is_saturated(self):
        assert is_saturated_point(make_result(0.9, 0.55))

    def test_margin_is_relative(self):
        assert not is_saturated_point(make_result(0.9, 0.86), margin=0.05)
        assert is_saturated_point(make_result(0.9, 0.86), margin=0.01)

    def test_deadlock_counts_as_saturated(self):
        assert is_saturated_point(make_result(0.1, 0.1, deadlock=True))

    def test_zero_load_never_saturated(self):
        assert not is_saturated_point(make_result(0.0, 0.0))


# ---------------------------------------------------------------------------
# Adaptive scheduling
# ---------------------------------------------------------------------------

class TestAdaptiveScheduling:
    LOADS = [0.2, 0.7, 0.8, 0.9, 1.0]

    def _spec(self) -> SweepSpec:
        return SweepSpec(series=[("sat", build_config)], loads=self.LOADS, seeds=1)

    def test_cutoff_extrapolates_remaining_loads(self, tmp_path):
        store = ResultStore(str(tmp_path / "store.json"))
        outcome = run_sweep(
            self._spec(), workers=1, store=store,
            adaptive=AdaptiveSettings(cutoff_after=2, margin=0.05),
        )
        assert outcome.executed + outcome.extrapolated == len(self.LOADS)
        assert outcome.extrapolated >= 1
        table = outcome.table()
        flagged = [
            load for (_, load), result in table.items()
            if result.extra.get("extrapolated")
        ]
        # Extrapolation only ever affects the highest loads, contiguously.
        assert flagged == self.LOADS[-len(flagged):]
        for (_, load), result in table.items():
            if result.extra.get("extrapolated"):
                assert result.offered_load == load
                assert result.extra["extrapolated_from_load"] < load

    def test_extrapolated_records_use_suffixed_store_keys(self, tmp_path):
        path = str(tmp_path / "store.json")
        store = ResultStore(path)
        outcome = run_sweep(
            self._spec(), workers=1, store=store,
            adaptive=AdaptiveSettings(cutoff_after=1, margin=0.05),
        )
        assert outcome.extrapolated >= 1
        with open(path, "r", encoding="utf-8") as handle:
            stored = json.load(handle)["results"]
        extrapolated_keys = [
            key for key in stored if EXTRAPOLATED_KEY_SUFFIX in key
        ]
        assert len(extrapolated_keys) == outcome.extrapolated
        for key in extrapolated_keys:
            entry = stored[key]
            assert entry["meta"]["extrapolated"] is True
            assert entry["record"]["provenance"]["extrapolated"] is True
            # Traceability: the record names the simulated run it copies.
            assert entry["record"]["provenance"]["source_config_key"] in stored
            # The plain config key must NOT exist for extrapolated points.
            assert key.split(EXTRAPOLATED_KEY_SUFFIX)[0] not in stored

    def test_non_adaptive_rerun_resimulates_extrapolated_points(self, tmp_path):
        path = str(tmp_path / "store.json")
        first = run_sweep(
            self._spec(), workers=1, store=ResultStore(path),
            adaptive=AdaptiveSettings(cutoff_after=1, margin=0.05),
        )
        assert first.extrapolated >= 1
        second = run_sweep(self._spec(), workers=1, store=ResultStore(path))
        assert second.executed == first.extrapolated
        assert second.cache_hits == first.executed

    def test_adaptive_resume_serves_extrapolated_records(self, tmp_path):
        path = str(tmp_path / "store.json")
        settings = AdaptiveSettings(cutoff_after=1, margin=0.05)
        first = run_sweep(
            self._spec(), workers=1, store=ResultStore(path), adaptive=settings
        )
        resumed = run_sweep(
            self._spec(), workers=1, store=ResultStore(path), adaptive=settings
        )
        assert resumed.executed == 0 and resumed.extrapolated == 0
        assert resumed.cache_hits == len(self.LOADS)
        for key, result in first.raw.items():
            assert dataclasses.asdict(resumed.raw[key]) == dataclasses.asdict(result)

    def test_different_adaptive_settings_never_share_extrapolations(self, tmp_path):
        """An extrapolation is only valid under the settings that made it."""
        path = str(tmp_path / "store.json")
        first = run_sweep(
            self._spec(), workers=1, store=ResultStore(path),
            adaptive=AdaptiveSettings(cutoff_after=1, margin=0.05),
        )
        assert first.extrapolated >= 1
        # A margin so wide nothing saturates: the old extrapolations must
        # not be served, and with no cutoff every point is simulated.
        second = run_sweep(
            self._spec(), workers=1, store=ResultStore(path),
            adaptive=AdaptiveSettings(cutoff_after=1, margin=0.5),
        )
        assert second.cache_hits == first.executed
        assert second.executed == first.extrapolated
        assert second.extrapolated == 0

    def test_adaptive_without_saturation_simulates_everything(self):
        spec = SweepSpec(series=[("low", build_config)], loads=[0.05, 0.1], seeds=1)
        outcome = run_sweep(
            spec, workers=1, adaptive=AdaptiveSettings(cutoff_after=2, margin=0.5)
        )
        assert outcome.extrapolated == 0
        assert outcome.executed == 2

    def test_settings_validate(self):
        with pytest.raises(ValueError):
            AdaptiveSettings(cutoff_after=0)
        with pytest.raises(ValueError):
            AdaptiveSettings(margin=1.5)


# ---------------------------------------------------------------------------
# Convergence-window measurement
# ---------------------------------------------------------------------------

class TestConvergence:
    def test_relative_half_width(self):
        import math

        assert _relative_half_width([1.0], 0.95) == math.inf
        assert _relative_half_width([2.0, 2.0, 2.0], 0.95) == 0.0
        wide = _relative_half_width([1.0, 3.0], 0.95)
        narrow = _relative_half_width([1.9, 2.1], 0.95)
        assert wide > narrow > 0.0

    def test_settings_validate(self):
        with pytest.raises(ValueError):
            ConvergenceSettings(rel_tol=0.0)
        with pytest.raises(ValueError):
            ConvergenceSettings(confidence=0.5)
        with pytest.raises(ValueError):
            ConvergenceSettings(min_windows=1)
        with pytest.raises(ValueError):
            ConvergenceSettings(min_windows=5, max_windows=3)

    def test_budget_cap_and_provenance(self):
        config = make_config(measure_cycles=1000).with_load(0.3)
        session = Session(config)
        session.warmup()
        settings = ConvergenceSettings(rel_tol=0.2, min_windows=2, max_windows=5)
        combined = session.measure_converged(settings)
        record = session.record()
        info = record.provenance["convergence"]
        assert info["measured_cycles"] <= config.measure_cycles
        assert info["windows"] == combined.extra["convergence_windows"]
        assert record.summary.extra["convergence_windows"] == info["windows"]
        assert record.summary is combined or record.summary == combined
        # Per-batch windows ride along behind the combined headline.
        assert len(record.windows) == info["windows"] + 1

    def test_converged_early_spends_less_than_budget(self):
        config = make_config(measure_cycles=2000).with_load(0.2)
        session = Session(config)
        session.warmup()
        combined = session.measure_converged(
            ConvergenceSettings(rel_tol=0.5, min_windows=2, max_windows=10)
        )
        info = session.provenance_extra["convergence"]
        assert combined.extra["converged"] is True
        assert info["measured_cycles"] < config.measure_cycles

    def test_converge_mode_does_not_pollute_default_cache(self, tmp_path):
        path = str(tmp_path / "store.json")
        spec = SweepSpec(series=[("c", build_config)], loads=[0.2], seeds=1)
        converged = run_sweep(
            spec, workers=1, store=ResultStore(path),
            converge=ConvergenceSettings(min_windows=2, max_windows=4),
        )
        assert converged.executed == 1
        # A default-mode sweep over the same store must not see it.
        plain = run_sweep(spec, workers=1, store=ResultStore(path))
        assert plain.executed == 1 and plain.cache_hits == 0
        # ... and the converge-mode rerun is served from its own key.
        again = run_sweep(
            spec, workers=1, store=ResultStore(path),
            converge=ConvergenceSettings(min_windows=2, max_windows=4),
        )
        assert again.executed == 0 and again.cache_hits == 1

    def test_converged_summary_flagged_in_store_record(self, tmp_path):
        path = str(tmp_path / "store.json")
        spec = SweepSpec(series=[("c", build_config)], loads=[0.2], seeds=1)
        run_sweep(
            spec, workers=1, store=ResultStore(path),
            converge=ConvergenceSettings(min_windows=2, max_windows=4),
        )
        with open(path, "r", encoding="utf-8") as handle:
            stored = json.load(handle)["results"]
        (key,) = stored.keys()
        assert ":cw" in key
        assert "convergence" in stored[key]["record"]["provenance"]
