"""RunRecord schema v2: round-trips, v1 migration, and the v2 result store.

The critical property: a v1 store file (flat ``SimulationResult`` dicts, as
written by the PR 1/2 orchestrator) opens through migration and serves every
entry from cache — zero simulations re-run — and the next flush persists the
upgraded v2 format.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.config import SimulationConfig
from repro.experiments.orchestrator import (
    STORE_VERSION,
    ResultStore,
    SweepSpec,
    orchestration,
    run_sweep,
)
from repro.metrics import SimulationResult
from repro.record import RECORD_SCHEMA_VERSION, RunRecord
from repro.session import Session


def make_config(**overrides) -> SimulationConfig:
    base = SimulationConfig(warmup_cycles=150, measure_cycles=300)
    return dataclasses.replace(base, **overrides)


def build_config() -> SimulationConfig:
    return make_config()


def sample_summary(**overrides) -> SimulationResult:
    base = dict(
        offered_load=0.5, accepted_load=0.42, average_latency=150.5,
        latency_p99=310.0, packets_delivered=100, packets_generated=120,
        phits_delivered=800, measured_cycles=300, num_nodes=8,
        misrouted_fraction=0.1, deadlock_suspected=False, extra={"note": "x"},
    )
    base.update(overrides)
    return SimulationResult(**base)


class TestRunRecord:
    def test_roundtrip(self):
        record = RunRecord(
            summary=sample_summary(),
            channels={"timeseries": {"meta": {"interval": 10}, "data": [1, 2]}},
            windows=[{"label": "w0", "summary": sample_summary().to_dict()}],
            provenance={"config_key": "abc", "engine_cycles": 450},
        )
        clone = RunRecord.from_dict(json.loads(json.dumps(record.to_dict())))
        assert clone.schema_version == RECORD_SCHEMA_VERSION
        assert dataclasses.asdict(clone.summary) == dataclasses.asdict(record.summary)
        assert clone.channels == record.channels
        assert clone.windows == record.windows
        assert clone.provenance == record.provenance

    def test_v1_payload_migrates(self):
        v1 = sample_summary().to_dict()  # flat dict: what v1 stores held
        record = RunRecord.from_dict(v1)
        assert record.schema_version == RECORD_SCHEMA_VERSION
        assert record.provenance["migrated_from"] == 1
        assert record.channels == {}
        assert dataclasses.asdict(record.summary) == v1

    def test_future_version_rejected(self):
        with pytest.raises(ValueError):
            RunRecord.from_dict({"schema_version": 99, "summary": {}})

    def test_session_record_from_live_run(self):
        record = Session(make_config().with_load(0.2)).run()
        assert record.schema_version == RECORD_SCHEMA_VERSION
        assert record.summary.packets_delivered > 0
        assert record.channels == {}  # no probes attached
        assert record.provenance["engine_cycles"] == 450


class TestStoreV2:
    def test_fresh_store_writes_v2(self, tmp_path):
        path = str(tmp_path / "store.json")
        spec = SweepSpec(series=[("s", build_config)], loads=[0.1], seeds=1)
        store = ResultStore(path)
        run_sweep(spec, workers=1, store=store)
        store.flush()
        payload = json.load(open(path))
        assert payload["version"] == STORE_VERSION == 2
        entry = next(iter(payload["results"].values()))
        assert entry["record"]["schema_version"] == RECORD_SCHEMA_VERSION

    def test_get_record_and_entries(self, tmp_path):
        path = str(tmp_path / "store.json")
        spec = SweepSpec(series=[("s", build_config)], loads=[0.1], seeds=1)
        store = ResultStore(path)
        outcome = run_sweep(spec, workers=1, store=store)
        key = spec.expand()[0].key
        record = store.get_record(key)
        assert isinstance(record, RunRecord)
        assert dataclasses.asdict(record.summary) == dataclasses.asdict(
            outcome.raw[key]
        )
        rows = list(store.entries())
        assert len(rows) == 1 and rows[0][0] == key
        assert rows[0][2]["series"] == "s"


class TestV1StoreMigration:
    def _write_v1_store(self, path, spec):
        """Produce a store in the exact v1 on-disk format for ``spec``."""
        outcome = run_sweep(spec, workers=1)
        v1 = {
            "version": 1,
            "results": {
                job.key: {
                    "result": outcome.raw[job.key].to_dict(),
                    "meta": {"series": job.series, "load": job.load,
                             "seed": job.seed},
                }
                for job in spec.expand()
            },
        }
        path.write_text(json.dumps(v1))
        return outcome

    def test_v1_store_serves_cache_without_resimulation(self, tmp_path):
        path = tmp_path / "store.json"
        spec = SweepSpec(series=[("s", build_config)], loads=[0.1, 0.25], seeds=1)
        reference = self._write_v1_store(path, spec)

        import repro.experiments.orchestrator as orch

        executed = []
        original = orch._execute_job

        def spying_execute(job):
            executed.append(job.key)
            return original(job)

        orch._execute_job = spying_execute
        try:
            store = ResultStore(str(path))
            assert store.migrated == 2
            outcome = run_sweep(spec, workers=1, store=store)
        finally:
            orch._execute_job = original
        assert executed == []  # migration means no re-simulation
        assert outcome.cache_hits == 2 and outcome.executed == 0
        for key, result in reference.raw.items():
            assert dataclasses.asdict(outcome.raw[key]) == dataclasses.asdict(result)

    def test_migrated_store_flushes_as_v2(self, tmp_path):
        path = tmp_path / "store.json"
        spec = SweepSpec(series=[("s", build_config)], loads=[0.1], seeds=1)
        self._write_v1_store(path, spec)
        store = ResultStore(str(path))
        store.flush()  # migration marks the store dirty
        payload = json.load(open(path))
        assert payload["version"] == 2
        entry = next(iter(payload["results"].values()))
        assert entry["record"]["provenance"]["migrated_from"] == 1
        assert entry["meta"]["series"] == "s"

    def test_unknown_version_still_ignored(self, tmp_path):
        path = tmp_path / "store.json"
        path.write_text('{"version": 999, "results": {"x": {}}}')
        assert len(ResultStore(str(path))) == 0


class TestProbedJobs:
    def test_context_probes_persist_channels(self, tmp_path):
        path = str(tmp_path / "store.json")
        spec = SweepSpec(series=[("s", build_config)], loads=[0.1], seeds=1)
        with orchestration(workers=1, store=path, probes=("timeseries",)):
            outcome = run_sweep(spec)
        store = ResultStore(path)
        key = spec.expand()[0].key
        record = store.get_record(key)
        assert "timeseries" in record.channels
        assert record.provenance["probes"] == ["TimeSeriesProbe"]
        # Probing never changes the summary (zero-cost dispatch design).
        plain = run_sweep(spec, workers=1)
        assert dataclasses.asdict(outcome.raw[key]) == dataclasses.asdict(
            plain.raw[key]
        )

    def test_job_probes_roundtrip_spec(self):
        spec = SweepSpec(
            series=[("s", build_config)], loads=[0.1], seeds=1,
            probes=("linkutil",),
        )
        job = spec.expand()[0]
        assert job.probes == ("linkutil",)

    def test_unknown_probe_name_rejected(self):
        from repro.probes import make_probes

        with pytest.raises(ValueError):
            make_probes(["bogus"])
