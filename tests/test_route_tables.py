"""Route-table construction modes: dense precompute vs lazy column cache.

The dense table and the lazy per-destination column cache are two front-ends
over the same suffix-merge column fill, so every query — ``next_port``,
``hop_sequence``, ``distance``, ``first_global_link`` — must answer
identically for every (src, dst) pair on every registered topology, under
any LRU capacity (evicted columns must rebuild byte-identically).  Simulation
results and fingerprints must not depend on the mode at all.
"""

import dataclasses
import os

import pytest

from repro import Session, Simulation, SimulationConfig
from repro.config import NetworkConfig
from repro.routing.route_table import (
    DEFAULT_LAZY_STATE_BUDGET,
    DENSE_ROUTER_THRESHOLD,
    LazyRouteTable,
    RouteTable,
    make_route_table,
    resolve_route_table_mode,
)
from repro.simulation import build_artifacts
from repro.topology import TOPOLOGIES

# One representative instance per registered topology (kept in sync with the
# registry by test_every_registered_topology_is_covered below).
REGISTRY_INSTANCES = {
    "dragonfly": {"h": 2},
    "flattened_butterfly": {"k1": 4, "k2": 3, "nodes_per_router": 2},
    "hyperx": {"s": (4, 3, 3), "nodes_per_router": 2},
    "megafly": {"spines": 2, "leaves": 2, "h": 2, "nodes_per_router": 2},
}


def test_every_registered_topology_is_covered():
    assert set(REGISTRY_INSTANCES) == set(TOPOLOGIES.names())


@pytest.fixture(params=sorted(REGISTRY_INSTANCES), name="topo")
def topo_fixture(request):
    return TOPOLOGIES.build(request.param, REGISTRY_INSTANCES[request.param])


def assert_tables_agree(dense, lazy, n):
    for dst in range(n):
        for src in range(n):
            assert lazy.next_port(src, dst) == dense.next_port(src, dst)
            assert lazy.hop_sequence(src, dst) == dense.hop_sequence(src, dst)
            assert lazy.distance(src, dst) == dense.distance(src, dst)
            assert (lazy.first_global_link(src, dst)
                    == dense.first_global_link(src, dst))


class TestLazyDenseEquality:
    def test_full_table_equality(self, topo):
        dense = RouteTable(topo)
        lazy = LazyRouteTable(topo)
        assert_tables_agree(dense, lazy, topo.num_routers)

    def test_equality_under_heavy_eviction(self, topo):
        # capacity 2 forces near-constant eviction; answers must not change.
        dense = RouteTable(topo)
        lazy = LazyRouteTable(topo, capacity=2)
        assert_tables_agree(dense, lazy, topo.num_routers)
        assert lazy.evictions > 0

    def test_column_views_agree(self, topo):
        dense = RouteTable(topo)
        lazy = LazyRouteTable(topo)
        for dst in range(topo.num_routers):
            dcol, lcol = dense.column(dst), lazy.column(dst)
            for src in range(topo.num_routers):
                assert lcol.next_port(src) == dcol.next_port(src)
                assert lcol.hop_sequence(src) == dcol.hop_sequence(src)
                assert lcol.distance(src) == dcol.distance(src)
                assert lcol.first_global_link(src) == dcol.first_global_link(src)

    def test_min_next_ports_to_matches_pairwise(self, topo):
        # The batch column fill (closed-form where overridden) must agree
        # with the per-pair minimal next-port query.
        for dst in range(topo.num_routers):
            ports = topo.min_next_ports_to(dst)
            for src in range(topo.num_routers):
                expected = topo.min_next_port(src, dst)
                got = ports[src] if ports[src] >= 0 else None
                assert got == expected, (src, dst)


class TestLruEviction:
    def test_evicted_columns_rebuild_identically(self, topo):
        lazy = LazyRouteTable(topo, capacity=2)
        n = topo.num_routers
        first = {}
        for dst in range(n):
            col = lazy.column(dst)
            first[dst] = (bytes(col.seq_ids), bytes(col.ports),
                          col.first_global.tobytes())
        # All but the last 2 columns have been evicted; touch them again and
        # byte-compare the rebuilt arrays.
        built_before = lazy.columns_built
        for dst in range(n):
            col = lazy.column(dst)
            assert (bytes(col.seq_ids), bytes(col.ports),
                    col.first_global.tobytes()) == first[dst]
        assert lazy.columns_built > built_before  # recomputation happened

    def test_stats_accounting(self, topo):
        lazy = LazyRouteTable(topo, capacity=4)
        n = topo.num_routers
        for dst in range(n):
            lazy.column(dst)
        lazy.column(n - 1)  # hit
        stats = lazy.table_stats()
        assert stats["mode"] == "lazy"
        assert stats["routers"] == n
        assert stats["capacity"] == 4
        assert stats["columns_built"] == n
        assert stats["columns_resident"] == min(4, n)
        assert stats["hits"] >= 1
        assert stats["misses"] == n
        assert stats["evictions"] == stats["columns_built"] - stats["columns_resident"]
        assert stats["route_state_bytes"] > 0

    def test_capacity_clamped_to_table_size(self, topo):
        lazy = LazyRouteTable(topo, capacity=10**9)
        assert lazy.capacity == topo.num_routers
        lazy = LazyRouteTable(topo, capacity=0)
        assert lazy.capacity == 1


class TestModeResolution:
    def test_auto_picks_dense_below_threshold(self):
        assert resolve_route_table_mode("auto", DENSE_ROUTER_THRESHOLD) == "dense"
        assert resolve_route_table_mode("auto", DENSE_ROUTER_THRESHOLD + 1) == "lazy"

    def test_explicit_modes_pass_through(self):
        assert resolve_route_table_mode("dense", 10**6) == "dense"
        assert resolve_route_table_mode("lazy", 4) == "lazy"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            resolve_route_table_mode("sparse", 10)

    def test_factory_returns_matching_class(self, topo):
        assert isinstance(make_route_table(topo, "dense"), RouteTable)
        assert isinstance(make_route_table(topo, "lazy"), LazyRouteTable)
        # tiny topologies resolve auto -> dense
        assert isinstance(make_route_table(topo, "auto"), RouteTable)

    def test_default_capacity_is_bounded(self, topo):
        lazy = LazyRouteTable(topo)
        # The byte budget always exceeds 2n bytes for registry-sized
        # topologies, so the default clamps to one column per destination;
        # resident state can never exceed the budget either way.
        assert lazy.capacity == topo.num_routers
        assert lazy.capacity * 2 * topo.num_routers <= DEFAULT_LAZY_STATE_BUDGET


class TestSimulationEquivalence:
    def test_result_fingerprint_identical_under_lazy(self):
        config = SimulationConfig()
        dense = dataclasses.asdict(
            Simulation(config, route_table_mode="dense").run())
        lazy = dataclasses.asdict(
            Simulation(config, route_table_mode="lazy").run())
        assert lazy == dense

    def test_build_artifacts_honors_mode(self):
        config = SimulationConfig()
        artifacts = build_artifacts(config, cached=False,
                                    route_table_mode="lazy")
        assert isinstance(artifacts.route_table, LazyRouteTable)

    def test_provenance_surfaces_table_stats(self):
        sim = Simulation(SimulationConfig(), route_table_mode="lazy")
        session = Session(simulation=sim)
        session.warmup(50)
        session.measure(100)
        record = session.record()
        stats = record.provenance["route_table"]
        assert stats["mode"] == "lazy"
        assert stats["columns_built"] >= 1
        assert stats["hits"] + stats["misses"] > 0


class TestGlobalPortIndexCache:
    def test_cached_index_matches_scan(self, topo):
        from repro.core.link_types import LinkType
        for router in range(topo.num_routers):
            expected = {}
            for info in topo.ports(router):
                if info.link_type == LinkType.GLOBAL:
                    expected[info.port] = len(expected)
            assert topo.num_global_ports(router) == len(expected)
            for port, index in expected.items():
                assert topo.global_port_index(router, port) == index

    def test_non_global_port_still_raises(self, topo):
        from repro.core.link_types import LinkType
        for info in topo.ports(0):
            if info.link_type != LinkType.GLOBAL:
                with pytest.raises(ValueError):
                    topo.global_port_index(0, info.port)
                break


@pytest.mark.scale_smoke
@pytest.mark.skipif(not os.environ.get("RUN_SCALE_SMOKE"),
                    reason="set RUN_SCALE_SMOKE=1 to run the 10^5-endpoint "
                           "construction smoke test (several minutes, ~GB RSS)")
def test_system_scale_constructs_within_budget():
    """A 10^5-endpoint Dragonfly constructs and runs a short warmup+measure
    session in lazy mode within the CI scale-smoke budget (wall clock is
    enforced by the job timeout; RSS is asserted here)."""
    import resource
    import sys

    from repro.experiments import SYSTEM

    network = SYSTEM.network_for("dragonfly")
    config = SimulationConfig(network=network).with_load(SYSTEM.loads[0])
    sim = Simulation(config, route_table_mode="auto")
    assert isinstance(sim.route_table, LazyRouteTable)
    assert sim.topology.num_nodes >= 100_000
    session = Session(simulation=sim)
    session.warmup(SYSTEM.warmup_cycles)
    session.measure(SYSTEM.measure_cycles)
    record = session.record()
    assert record.provenance["route_table"]["mode"] == "lazy"

    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    peak_bytes = peak_kb * (1 if sys.platform == "darwin" else 1024)
    assert peak_bytes <= 2 * 1024**3, f"peak RSS {peak_bytes / 1e9:.2f} GB > 2 GB"
