"""Credit tracking, min/non-min ledgers, allocator and port behaviour."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffers import StaticallyPartitionedBuffer
from repro.core.link_types import LinkType, MessageClass
from repro.core.mincred import PortOccupancyLedger, SplitOccupancy
from repro.packet import Packet
from repro.router.allocator import Request, SeparableAllocator
from repro.router.credits import CreditTracker
from repro.router.ports import EjectionPort, InputPort
from repro.router.saturation import SaturationBoard


def make_packet(size=8, src=0, dst=1):
    return Packet(src_node=src, dst_node=dst, size_phits=size)


class TestSplitOccupancy:
    def test_add_remove(self):
        split = SplitOccupancy()
        split.add(8, minimal=True)
        split.add(8, minimal=False)
        assert split.total == 16
        assert split.occupancy(minimal_only=True) == 8
        split.remove(8, minimal=True)
        assert split.minimal == 0

    def test_underflow_rejected(self):
        split = SplitOccupancy()
        with pytest.raises(ValueError):
            split.remove(1, minimal=True)

    def test_ledger_port_occupancy(self):
        ledger = PortOccupancyLedger(num_vcs=2)
        ledger.add(0, 8, minimal=True)
        ledger.add(1, 8, minimal=False)
        assert ledger.port_occupancy() == 16
        assert ledger.port_occupancy(minimal_only=True) == 8
        assert ledger.vc_occupancy(1, minimal_only=True) == 0


class TestCreditTracker:
    def test_debit_and_credit(self):
        tracker = CreditTracker(StaticallyPartitionedBuffer(2, 32))
        assert tracker.can_send(0, 8)
        tracker.debit(0, 8, minimal=True)
        assert tracker.free_for(0) == 24
        assert tracker.vc_occupancy(0) == 8
        tracker.credit(0, 8, minimal=True)
        assert tracker.free_for(0) == 32

    def test_vct_admission(self):
        tracker = CreditTracker(StaticallyPartitionedBuffer(1, 16))
        tracker.debit(0, 8, minimal=True)
        assert tracker.can_send(0, 8)
        tracker.debit(0, 8, minimal=False)
        assert not tracker.can_send(0, 1)

    def test_occupancy_metric_variants(self):
        tracker = CreditTracker(StaticallyPartitionedBuffer(2, 64))
        tracker.debit(0, 8, minimal=True)
        tracker.debit(1, 16, minimal=False)
        assert tracker.occupancy_metric(per_vc=False, vc=0, minimal_only=False) == 24
        assert tracker.occupancy_metric(per_vc=False, vc=0, minimal_only=True) == 8
        assert tracker.occupancy_metric(per_vc=True, vc=0, minimal_only=False) == 8
        assert tracker.occupancy_metric(per_vc=True, vc=1, minimal_only=True) == 0


@settings(max_examples=50, deadline=None)
@given(events=st.lists(st.tuples(st.integers(0, 1), st.booleans()), max_size=50))
def test_credit_conservation_property(events):
    """Every debit matched by a credit restores the tracker exactly."""
    tracker = CreditTracker(StaticallyPartitionedBuffer(2, 512))
    outstanding = []
    for vc, minimal in events:
        if tracker.can_send(vc, 8):
            tracker.debit(vc, 8, minimal)
            outstanding.append((vc, minimal))
    for vc, minimal in outstanding:
        tracker.credit(vc, 8, minimal)
    assert tracker.port_occupancy() == 0
    for vc in range(2):
        assert tracker.free_for(vc) == 512


class TestInputPort:
    def make_port(self, vcs=2, cap=32):
        return InputPort(0, LinkType.LOCAL, vcs,
                         StaticallyPartitionedBuffer(vcs, cap), pipeline_latency=5)

    def test_pipeline_latency_gates_head(self):
        port = self.make_port()
        packet = make_packet()
        port.receive(packet, 0, now=10)
        assert port.head(0, now=10) is None
        assert port.head(0, now=14) is None
        assert port.head(0, now=15) is packet

    def test_fifo_order(self):
        port = self.make_port()
        first, second = make_packet(), make_packet()
        port.receive(first, 0, now=0)
        port.receive(second, 0, now=0)
        assert port.head(0, now=100) is first
        port.pop(0, now=100, minimal=True)
        assert port.head(0, now=100) is second

    def test_occupancy_tracking(self):
        port = self.make_port()
        packet = make_packet(size=8)
        port.receive(packet, 1, now=0)
        assert port.occupancy(1) == 8
        assert port.resident_packets == 1
        port.pop(1, now=10, minimal=True)
        assert port.occupancy(1) == 0
        assert port.is_empty()


class TestEjectionPort:
    def test_serialization(self):
        port = EjectionPort(node=0, msg_class=MessageClass.REQUEST)
        packet = make_packet(size=8)
        done = port.consume(packet, now=10)
        assert done == 18
        assert not port.idle_at(15)
        assert port.idle_at(18)

    def test_busy_rejects(self):
        port = EjectionPort(node=0, msg_class=MessageClass.REQUEST)
        port.consume(make_packet(), now=0)
        with pytest.raises(RuntimeError):
            port.consume(make_packet(), now=3)


class TestSeparableAllocator:
    def _request(self, input_index, resource):
        return Request(input_index=input_index, input_vc=0,
                       packet=make_packet(), resource=resource)

    def test_one_grant_per_resource(self):
        allocator = SeparableAllocator(num_inputs=4)
        requests = [self._request(i, ("out", 0)) for i in range(4)]
        grants = allocator.arbitrate(requests)
        assert len(grants) == 1

    def test_distinct_resources_all_granted(self):
        allocator = SeparableAllocator(num_inputs=4)
        requests = [self._request(i, ("out", i)) for i in range(4)]
        grants = allocator.arbitrate(requests)
        assert len(grants) == 4

    def test_round_robin_priority_rotates(self):
        allocator = SeparableAllocator(num_inputs=3)
        winners = []
        for _ in range(3):
            requests = [self._request(i, ("out", 0)) for i in range(3)]
            winners.append(allocator.arbitrate(requests)[0].input_index)
        # Over three rounds with the same contenders every input wins once.
        assert sorted(winners) == [0, 1, 2]


class TestSaturationBoard:
    def test_hot_port_detected_against_group_average(self):
        board = SaturationBoard(positions=4, global_ports=2, saturation_factor=1.5)
        # Seven lightly loaded ports and one hot one.
        for position in range(4):
            for port in range(2):
                board.post(position, port, 0, 10)
        board.post(1, 1, 0, 200)
        assert board.is_saturated(1, 1, 0)
        assert not board.is_saturated(0, 0, 0)
        assert board.saturated_count(0) == 1

    def test_uniform_occupancy_never_saturated(self):
        board = SaturationBoard(positions=2, global_ports=2)
        for position in range(2):
            for port in range(2):
                board.post(position, port, 0, 50)
        assert board.saturated_count(0) == 0

    def test_zero_occupancy_not_saturated(self):
        board = SaturationBoard(positions=2, global_ports=2)
        assert not board.is_saturated(0, 0, 0)

    def test_post_updates_average(self):
        board = SaturationBoard(positions=2, global_ports=1)
        board.post(0, 0, 0, 100)
        board.post(1, 0, 0, 0)
        assert board.average(0) == pytest.approx(50)
        board.post(0, 0, 0, 20)
        assert board.average(0) == pytest.approx(10)

    def test_bounds_checked(self):
        board = SaturationBoard(positions=2, global_ports=2)
        with pytest.raises(ValueError):
            board.post(2, 0, 0, 1)
        with pytest.raises(ValueError):
            board.is_saturated(0, 2, 0)
        with pytest.raises(ValueError):
            board.post(0, 0, 5, 1)
