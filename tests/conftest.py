"""Test configuration: make the src/ layout importable without installation."""

from __future__ import annotations

import sys
from pathlib import Path

try:  # pragma: no cover - exercised only in un-installed checkouts
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import pytest  # noqa: E402

from repro.config import SimulationConfig  # noqa: E402


@pytest.fixture
def tiny_config() -> SimulationConfig:
    """A very small, fast default simulation configuration."""
    return SimulationConfig(warmup_cycles=200, measure_cycles=400)
