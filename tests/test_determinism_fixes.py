"""Regression locks for the violations the devtools determinism rules surfaced.

PR 8's linter flagged ``RandomVc.choose`` falling back to the module-level
(unseeded) ``random`` generator when called without an rng.  Every real call
site threads the simulation's seeded ``random.Random`` through, so the fix
turns the silent fallback into a loud error — and these tests pin down that
(a) the error fires, (b) seeded behaviour is unchanged, and (c) a
random-selection simulation stays bit-identical run to run.
"""

from __future__ import annotations

import random
from dataclasses import asdict

import pytest

from repro.config import (
    NetworkConfig,
    RouterConfig,
    RoutingConfig,
    SimulationConfig,
    TrafficConfig,
)
from repro.core.arrangement import VcArrangement
from repro.core.vc_selection import RandomVc
from repro.simulation import run_simulation


def test_randomvc_requires_seeded_rng():
    with pytest.raises(ValueError, match="seeded rng"):
        RandomVc().choose([0, 1, 2], [4, 4, 4])


def test_randomvc_seeded_behaviour_unchanged():
    # The fix only removed the rng=None fallback; with an explicit rng the
    # choices must match what random.Random produced before the change.
    selection = RandomVc()
    rng = random.Random(7)
    picks = [selection.choose([3, 5, 9], [1, 1, 1], rng) for _ in range(16)]
    expected_rng = random.Random(7)
    expected = [[3, 5, 9][expected_rng.randrange(3)] for _ in range(16)]
    assert picks == expected


def _random_selection_config() -> SimulationConfig:
    return SimulationConfig(
        network=NetworkConfig(topology="dragonfly", h=2),
        router=RouterConfig(),
        routing=RoutingConfig(
            algorithm="min", vc_policy="flexvc", vc_selection="random"
        ),
        arrangement=VcArrangement.single_class(2, 1),
        traffic=TrafficConfig(pattern="uniform", load=0.5),
        warmup_cycles=200,
        measure_cycles=400,
        seed=11,
    )


def test_random_selection_simulation_is_reproducible():
    first = asdict(run_simulation(_random_selection_config()))
    second = asdict(run_simulation(_random_selection_config()))
    assert first == second
