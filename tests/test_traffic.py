"""Traffic generator statistics and the reactive traffic manager."""

import random

import pytest

from repro.config import TrafficConfig
from repro.core.link_types import MessageClass
from repro.metrics import MetricsCollector
from repro.packet import Packet
from repro.topology import Dragonfly
from repro.traffic import (
    AdversarialTraffic,
    BurstyUniformTraffic,
    PermutationTraffic,
    TrafficManager,
    UniformTraffic,
    make_generator,
)


class TestUniformTraffic:
    def test_offered_load_matches_request(self):
        rng = random.Random(7)
        gen = UniformTraffic(num_nodes=64, load=0.5, packet_size=8, rng=rng)
        cycles = 4000
        packets = sum(len(list(gen.generate(c))) for c in range(cycles))
        offered = packets * 8 / (64 * cycles)
        assert offered == pytest.approx(0.5, rel=0.1)

    def test_never_self_addressed(self):
        rng = random.Random(3)
        gen = UniformTraffic(num_nodes=16, load=1.0, packet_size=8, rng=rng)
        for cycle in range(200):
            for packet in gen.generate(cycle):
                assert packet.src_node != packet.dst_node

    def test_destinations_cover_the_network(self):
        rng = random.Random(11)
        gen = UniformTraffic(num_nodes=16, load=1.0, packet_size=1, rng=rng)
        destinations = {gen.destination_for(0, c) for c in range(2000)}
        assert destinations == set(range(1, 16))

    def test_invalid_parameters(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            UniformTraffic(1, 0.5, 8, rng)
        with pytest.raises(ValueError):
            UniformTraffic(8, 1.5, 8, rng)
        with pytest.raises(ValueError):
            UniformTraffic(8, 0.5, 0, rng)


class TestAdversarialTraffic:
    def test_destination_always_next_group(self):
        topo = Dragonfly(h=2)
        rng = random.Random(5)
        gen = AdversarialTraffic(topo.num_nodes, 0.5, 8, rng, topo, offset=1)
        for node in range(0, topo.num_nodes, 3):
            for _ in range(5):
                dst = gen.destination_for(node, 0)
                src_group = topo.group_of(topo.router_of_node(node))
                dst_group = topo.group_of(topo.router_of_node(dst))
                assert dst_group == (src_group + 1) % topo.num_groups

    def test_generic_groups_flattened_butterfly_rows(self):
        # ADV is no longer Dragonfly-specific: groups are the topology's
        # LOCAL-connected router sets (dimension-0 rows for a 2D FB).
        from repro.topology import FlattenedButterfly2D

        fb = FlattenedButterfly2D(4, 4, 2)
        gen = AdversarialTraffic(fb.num_nodes, 0.5, 8, random.Random(0), fb, offset=1)
        for node in range(fb.num_nodes):
            dst = gen.destination_for(node, 0)
            _, src_y = fb.coords(fb.router_of_node(node))
            _, dst_y = fb.coords(fb.router_of_node(dst))
            assert dst_y == (src_y + 1) % fb.k2

    def test_requires_multiple_groups(self):
        from repro.topology import FlattenedButterfly2D

        single_row = FlattenedButterfly2D(5, 1, 2)
        with pytest.raises(ValueError):
            AdversarialTraffic(single_row.num_nodes, 0.5, 8, random.Random(0), single_row)

    def test_offset_validation(self):
        topo = Dragonfly(h=2)
        with pytest.raises(ValueError):
            AdversarialTraffic(topo.num_nodes, 0.5, 8, random.Random(0), topo, offset=0)


class TestBurstyTraffic:
    def test_average_load_approximates_target(self):
        rng = random.Random(13)
        gen = BurstyUniformTraffic(num_nodes=64, load=0.4, packet_size=8, rng=rng,
                                   burst_length=5.0)
        cycles = 6000
        packets = sum(len(list(gen.generate(c))) for c in range(cycles))
        offered = packets * 8 / (64 * cycles)
        assert offered == pytest.approx(0.4, rel=0.2)

    def test_destination_fixed_within_burst(self):
        rng = random.Random(1)
        gen = BurstyUniformTraffic(num_nodes=32, load=0.9, packet_size=4, rng=rng,
                                   burst_length=50.0)
        destinations_per_burst = []
        current: set[int] = set()
        was_on = False
        for cycle in range(3000):
            on_before = gen._state_on[0]
            generated = gen.should_generate(0, cycle)
            if gen._state_on[0] and not on_before:
                if current:
                    destinations_per_burst.append(current)
                current = set()
            if generated:
                current.add(gen.destination_for(0, cycle))
            was_on = gen._state_on[0]
        _ = was_on
        assert all(len(burst) == 1 for burst in destinations_per_burst if burst)

    def test_burst_length_validation(self):
        with pytest.raises(ValueError):
            BurstyUniformTraffic(8, 0.5, 8, random.Random(0), burst_length=0.5)


class TestPermutationTraffic:
    def test_fixed_derangement(self):
        rng = random.Random(2)
        gen = PermutationTraffic(num_nodes=16, load=0.5, packet_size=8, rng=rng)
        partners = [gen.destination_for(n, 0) for n in range(16)]
        assert sorted(partners) == list(range(16))
        assert all(partners[n] != n for n in range(16))


class TestMakeGenerator:
    def test_reactive_halves_the_request_rate(self):
        topo = Dragonfly(h=2)
        plain = make_generator(TrafficConfig(load=0.8), topo, random.Random(0))
        reactive = make_generator(TrafficConfig(load=0.8, reactive=True), topo,
                                  random.Random(0))
        assert reactive.injection_probability == pytest.approx(
            plain.injection_probability / 2
        )

    def test_unknown_pattern_rejected_by_config(self):
        with pytest.raises(ValueError):
            TrafficConfig(pattern="tornado").validate()


class _StubRouter:
    def __init__(self):
        self.queued = []

    def enqueue_source(self, packet, now):
        self.queued.append((packet, now))


class TestTrafficManager:
    def _manager(self, reactive: bool):
        routers = [_StubRouter() for _ in range(4)]
        metrics = MetricsCollector(num_nodes=8, packet_size=8)
        metrics.open_window(0, 1000)
        topo_nodes_per_router = 2
        gen = UniformTraffic(8, 0.0, 8, random.Random(0))  # manual enqueue only
        manager = TrafficManager(gen, routers, topo_nodes_per_router, metrics, reactive)
        return manager, routers, metrics

    def test_enqueue_routes_to_source_router(self):
        manager, routers, _ = self._manager(reactive=False)
        packet = Packet(src_node=5, dst_node=0, size_phits=8, created_at=3)
        manager._enqueue(packet, 3)
        assert routers[2].queued and routers[2].queued[0][0] is packet

    def test_reply_generated_on_request_delivery(self):
        manager, routers, metrics = self._manager(reactive=True)
        request = Packet(src_node=1, dst_node=6, size_phits=8, created_at=0)
        manager._enqueue(request, 0)
        request.delivered_at = 50
        manager.on_delivery(request, 50)
        assert manager.replies_generated == 1
        reply_router = routers[0]  # node 1 lives on router 0
        replies = [p for p, _ in reply_router.queued if p.msg_class == MessageClass.REPLY]
        assert not replies  # reply originates at node 6 -> router 3
        reply = routers[3].queued[-1][0]
        assert reply.msg_class == MessageClass.REPLY
        assert reply.src_node == 6 and reply.dst_node == 1
        assert reply.in_reply_to == request.pid

    def test_no_reply_without_reactive(self):
        manager, routers, _ = self._manager(reactive=False)
        request = Packet(src_node=1, dst_node=6, size_phits=8, created_at=0)
        manager._enqueue(request, 0)
        request.delivered_at = 9
        manager.on_delivery(request, 9)
        assert manager.replies_generated == 0

    def test_delivery_recorded_in_metrics(self):
        manager, _, metrics = self._manager(reactive=False)
        packet = Packet(src_node=0, dst_node=7, size_phits=8, created_at=10)
        manager._enqueue(packet, 10)
        packet.delivered_at = 60
        manager.on_delivery(packet, 60)
        assert metrics.packets_delivered_window == 1
        assert metrics.latencies == [50]
