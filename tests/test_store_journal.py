"""Durability of the journaled result store (PR 10).

The properties under test are the tentpole's acceptance criteria:

* a SIGKILL at an *arbitrary byte offset* of an append loses at most the
  half-written final entry — reopening salvages every fully-written record
  and never raises;
* a crash at any point of a compaction leaves either the old journal or the
  complete new one, never a mix;
* two concurrent writer processes sharing one journal produce the exact
  union of their records — zero lost;
* a second sweep over a shared store resumes from a peer's partial results
  (cache hits, not re-simulation);
* existing JSON stores (v1 and v2) keep loading, and migrate to journal
  format losslessly when asked.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
import time

import pytest

from repro.config import SimulationConfig
from repro.experiments.orchestrator import (
    Job,
    ResultStore,
    StoreError,
    config_key,
    run_jobs,
)
from repro.metrics import SimulationResult
from repro.record import JobFailure, RunRecord
from repro.store import (
    ConcurrentWriterWarning,
    JournalStore,
    JsonStore,
    StoreLock,
    detect_format,
    frame_entry,
    parse_frame_line,
    scan_frames,
)

# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

def sample_summary(**overrides) -> SimulationResult:
    base = dict(
        offered_load=0.5, accepted_load=0.42, average_latency=150.5,
        latency_p99=310.0, packets_delivered=100, packets_generated=120,
        phits_delivered=800, measured_cycles=300, num_nodes=8,
        misrouted_fraction=0.1, deadlock_suspected=False, extra={},
    )
    base.update(overrides)
    return SimulationResult(**base)


def fill(store: ResultStore, keys) -> None:
    for i, key in enumerate(keys):
        store.put(key, sample_summary(offered_load=0.1 + 0.01 * i))


#: boilerplate prepended to every subprocess helper script.
CHILD_PRELUDE = """
import os, sys
from repro.store import ResultStore
from repro.metrics import SimulationResult

def summary(i):
    return SimulationResult(
        offered_load=0.1 * i, accepted_load=0.09 * i, average_latency=10.0 + i,
        latency_p99=20.0 + i, packets_delivered=100 * i, packets_generated=110 * i,
        phits_delivered=400 * i, measured_cycles=300, num_nodes=8,
        misrouted_fraction=0.0, deadlock_suspected=False, extra={},
    )
"""


def run_child(script: str, *args: str, env: dict | None = None, **popen_kwargs):
    child_env = dict(os.environ)
    if env:
        child_env.update(env)
    return subprocess.run(
        [sys.executable, "-c", CHILD_PRELUDE + textwrap.dedent(script), *args],
        capture_output=True, text=True, env=child_env, timeout=120,
        **popen_kwargs,
    )


# ---------------------------------------------------------------------------
# Frame layer
# ---------------------------------------------------------------------------

class TestFraming:
    def test_roundtrip(self):
        payload = {"op": "record", "key": "abc", "record": {"x": [1, 2.5, None]}}
        line = frame_entry(payload)
        assert line.startswith(b"J1 ") and line.endswith(b"\n")
        assert parse_frame_line(line[:-1]) == payload

    def test_corruption_is_rejected(self):
        line = frame_entry({"op": "record", "key": "k"})[:-1]
        assert parse_frame_line(line) is not None
        # flip one payload byte: crc mismatch
        broken = line[:-3] + bytes([line[-3] ^ 0x01]) + line[-2:]
        assert parse_frame_line(broken) is None
        # truncated payload: length mismatch
        assert parse_frame_line(line[:-1]) is None
        # foreign line entirely
        assert parse_frame_line(b'{"version": 2}') is None
        assert parse_frame_line(b"J1 garbage") is None

    def test_scan_stops_at_first_bad_frame(self):
        good = frame_entry({"op": "record", "key": "a"})
        also_good = frame_entry({"op": "record", "key": "b"})
        torn = frame_entry({"op": "record", "key": "c"})[:-7]  # no newline
        data = good + also_good + torn
        payloads, end = scan_frames(data)
        assert [p["key"] for p in payloads] == ["a", "b"]
        assert end == len(good) + len(also_good)
        # a bad frame hides everything after it (prefix-validity rule)
        data = good + b"XX corrupt line\n" + also_good
        payloads, end = scan_frames(data)
        assert [p["key"] for p in payloads] == ["a"]
        assert end == len(good)


# ---------------------------------------------------------------------------
# Journal basics
# ---------------------------------------------------------------------------

class TestJournalStore:
    def test_roundtrip_and_autodetect(self, tmp_path):
        path = str(tmp_path / "store.journal")
        store = ResultStore(path, format="journal")
        assert isinstance(store, JournalStore)
        fill(store, ["k1", "k2", "k3"])
        store.put_failure("k4", JobFailure(reason="timeout", detail="3s"))
        store.flush()
        assert detect_format(path) == "journal"

        # plain ResultStore(path) dispatches by sniffing the file
        clone = ResultStore(path)
        assert isinstance(clone, JournalStore)
        assert len(clone) == 4
        assert clone.get("k2") is not None
        failures = list(clone.failures())
        assert len(failures) == 1 and failures[0][1].reason == "timeout"
        # failure entries read as cache misses, like the JSON store
        assert clone.get_record("k4") is None

    def test_appends_supersede_and_count(self, tmp_path):
        path = str(tmp_path / "s.journal")
        store = ResultStore(path, format="journal")
        fill(store, ["a", "b"])
        store.flush()
        size_after_first = os.path.getsize(path)
        store.put("a", sample_summary(offered_load=0.9))
        store.flush()
        # append-only: the second flush grew the file, no rewrite
        assert os.path.getsize(path) > size_after_first

        clone = ResultStore(path)
        assert len(clone) == 2  # last write wins
        assert clone.get("a").offered_load == pytest.approx(0.9)
        info = clone.describe()
        assert info["journal_ops"] == 3 and info["superseded"] == 1

    def test_flush_is_incremental_not_o_store(self, tmp_path):
        path = str(tmp_path / "s.journal")
        store = ResultStore(path, format="journal")
        fill(store, [f"k{i}" for i in range(50)])
        store.flush()
        size = os.path.getsize(path)
        store.put("one-more", sample_summary())
        store.flush()
        growth = os.path.getsize(path) - size
        # one record's frame, not 51 of them
        assert 0 < growth < size / 10

    def test_records_keep_full_fidelity(self, tmp_path):
        path = str(tmp_path / "s.journal")
        record = RunRecord(
            summary=sample_summary(),
            channels={"ts": {"meta": {"interval": 10}, "data": [1, 2, 3]}},
            windows=[{"label": "w0", "summary": sample_summary().to_dict()}],
            provenance={"config_key": "abc", "engine_cycles": 450},
        )
        store = ResultStore(path, format="journal")
        store.put_record("k", record, meta={"series": "S", "load": 0.5})
        store.flush()
        _, clone, meta = next(ResultStore(path).entries())
        assert clone.to_dict() == record.to_dict()
        assert meta == {"series": "S", "load": 0.5}

    def test_compaction_drops_dead_ops(self, tmp_path):
        path = str(tmp_path / "s.journal")
        store = JournalStore(path)
        for _ in range(4):
            fill(store, ["a", "b", "c"])
            store.flush()
        assert store.journal_ops == 12
        size_before = os.path.getsize(path)
        store.compact()
        assert store.compactions == 1
        assert store.journal_ops == 3
        assert os.path.getsize(path) < size_before
        clone = ResultStore(path)
        assert len(clone) == 3 and clone.compactions == 1

    def test_auto_compaction_trigger(self, tmp_path):
        path = str(tmp_path / "s.journal")
        store = JournalStore(path, compact_min_ops=8)
        for _ in range(6):
            fill(store, ["a", "b"])
            store.flush()
        # 12 ops, 2 live -> dead fraction 10/12 > 0.5 with min_ops reached
        assert store.compactions == 1
        assert ResultStore(path).describe()["entries"] == 2

    def test_no_file_until_first_flush(self, tmp_path):
        path = str(tmp_path / "s.journal")
        store = ResultStore(path, format="journal")
        store.flush()  # nothing written, nothing to create
        assert not os.path.exists(path)


# ---------------------------------------------------------------------------
# Torn-write recovery
# ---------------------------------------------------------------------------

class TestTornTailRecovery:
    def _build(self, tmp_path, n=6) -> str:
        path = str(tmp_path / "s.journal")
        store = ResultStore(path, format="journal")
        fill(store, [f"k{i}" for i in range(n)])
        store.flush()
        return path

    def test_truncation_at_every_byte_offset(self, tmp_path):
        """SIGKILL at an arbitrary byte offset == the file ends there.

        For *every* prefix length of a real journal, opening the prefix
        must salvage exactly the fully-framed records and never raise.
        """
        path = self._build(tmp_path)
        data = open(path, "rb").read()
        # frame boundaries: offsets at which a frame ends
        _, _ = scan_frames(data)
        boundaries = []
        pos = 0
        while pos < len(data):
            nl = data.find(b"\n", pos)
            boundaries.append(nl + 1)
            pos = nl + 1
        target = str(tmp_path / "torn.journal")
        # below len(magic) bytes the file no longer sniffs as a journal at
        # all (auto-dispatch falls back to a fresh JSON store, also lossless
        # in the sense that there was nothing complete to salvage)
        for cut in range(len(b"J1 "), len(data) + 1):
            with open(target, "wb") as handle:
                handle.write(data[:cut])
            complete = sum(1 for b in boundaries if b <= cut)
            store = ResultStore(target)
            # header frame is boundary 0; records are the rest
            expected_records = max(0, complete - 1)
            assert len(store) == expected_records, f"cut at byte {cut}"
            if cut not in (0, *boundaries):
                assert store.torn_salvages == 1
                # the truncation repaired the file: reopening is clean
                # (a cut inside the very first frame truncates to an empty
                # file, which then sniffs as a fresh store)
                if os.path.getsize(target):
                    assert ResultStore(target).torn_salvages == 0

    def test_garbage_tail_is_dropped_and_file_repaired(self, tmp_path):
        path = self._build(tmp_path)
        good_size = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.write(b"J1 999 0badc0de {\"op\": \"rec")
        store = ResultStore(path)
        assert len(store) == 6
        assert store.torn_salvages == 1 and store.torn_bytes_dropped > 0
        assert os.path.getsize(path) == good_size
        # salvaged store is immediately writable again
        store.put("k-after", sample_summary())
        store.flush()
        assert len(ResultStore(path)) == 7

    def test_corrupt_middle_hides_later_records(self, tmp_path):
        # prefix-validity: a flipped byte mid-journal drops everything after
        # it (indistinguishable from interleaved torn writes), but every
        # record before the corruption survives.
        path = self._build(tmp_path)
        data = bytearray(open(path, "rb").read())
        data[len(data) // 2] ^= 0x01
        with open(path, "wb") as handle:
            handle.write(bytes(data))
        store = ResultStore(path)
        assert 0 < len(store) < 6
        assert store.torn_salvages == 1


# ---------------------------------------------------------------------------
# Crash safety (subprocess hard-kills)
# ---------------------------------------------------------------------------

class TestCrashSafety:
    def test_sigkill_mid_append_loop(self, tmp_path):
        """Kill -9 a live writer; reopen salvages every flushed record."""
        path = str(tmp_path / "s.journal")
        script = """
        path = sys.argv[1]
        store = ResultStore(path, format="journal")
        i = 0
        while True:
            i += 1
            store.put(f"key{i}", summary(i))
            store.flush()
            print(i, flush=True)
        """
        child = subprocess.Popen(
            [sys.executable, "-c", CHILD_PRELUDE + textwrap.dedent(script), path],
            stdout=subprocess.PIPE, text=True, env=dict(os.environ),
        )
        flushed = 0
        try:
            while flushed < 5:
                line = child.stdout.readline()
                assert line, "writer died before reaching 5 flushes"
                flushed = int(line)
        finally:
            child.kill()
            child.wait(timeout=30)
        store = ResultStore(path)
        # every record the child reported as flushed survived the SIGKILL
        assert len(store) >= flushed
        for i in range(1, flushed + 1):
            assert store.get(f"key{i}") is not None
        # the dead writer's lock is not stuck: we can write immediately
        store.put("after", sample_summary())
        store.flush()

    def test_crash_mid_append_write(self, tmp_path):
        """Die after half a frame batch hits disk (REPRO_TEST_STORE_CRASH)."""
        path = str(tmp_path / "s.journal")
        store = ResultStore(path, format="journal")
        fill(store, ["a", "b", "c"])
        store.flush()
        script = """
        path = sys.argv[1]
        store = ResultStore(path)
        store.put("d", summary(4))
        store.put("e", summary(5))
        os.environ["REPRO_TEST_STORE_CRASH"] = "append-partial"
        store.flush()
        print("unreachable")
        """
        result = run_child(script, path)
        assert result.returncode == 17, result.stderr
        clone = ResultStore(path)
        # prior records all intact; the torn batch partially salvaged at a
        # frame boundary (here: "d" completes, "e" is the torn half)
        assert {"a", "b", "c"} <= {key for key, _, _ in clone.entries()}
        assert clone.torn_salvages in (0, 1)
        assert len(clone) in (3, 4)

    def test_crash_before_compaction_replace(self, tmp_path):
        path = str(tmp_path / "s.journal")
        store = JournalStore(path)
        for _ in range(3):
            fill(store, ["a", "b"])
            store.flush()
        script = """
        from repro.store import JournalStore
        store = JournalStore(sys.argv[1])
        store.compact()
        """
        result = run_child(
            script, path, env={"REPRO_TEST_STORE_CRASH": "compact-before-replace"}
        )
        assert result.returncode == 17, result.stderr
        # old journal untouched (all ops still there), tmp snapshot cleaned
        clone = JournalStore(path)
        assert len(clone) == 2
        assert clone.journal_ops == 6 and clone.compactions == 0
        clone.compact()  # open cleaned the stale tmp; compaction completes
        assert not [
            name for name in os.listdir(tmp_path) if ".compact." in name
        ]

    def test_crash_after_compaction_replace(self, tmp_path):
        path = str(tmp_path / "s.journal")
        store = JournalStore(path)
        for _ in range(3):
            fill(store, ["a", "b"])
            store.flush()
        script = """
        from repro.store import JournalStore
        store = JournalStore(sys.argv[1])
        store.compact()
        """
        result = run_child(
            script, path, env={"REPRO_TEST_STORE_CRASH": "compact-after-replace"}
        )
        assert result.returncode == 17, result.stderr
        # the complete new generation was published before the crash
        clone = JournalStore(path)
        assert len(clone) == 2
        assert clone.journal_ops == 2 and clone.compactions == 1


# ---------------------------------------------------------------------------
# Concurrent writers
# ---------------------------------------------------------------------------

class TestConcurrentWriters:
    def test_two_processes_zero_lost_records(self, tmp_path):
        """Two simultaneous writer processes -> the exact union survives."""
        path = str(tmp_path / "shared.journal")
        script = """
        path, prefix, count = sys.argv[1], sys.argv[2], int(sys.argv[3])
        store = ResultStore(path, format="journal")
        for i in range(count):
            store.put(f"{prefix}{i}", summary(i + 1))
            store.flush()
        store.close()
        print("done", flush=True)
        """
        env = dict(os.environ)
        children = [
            subprocess.Popen(
                [
                    sys.executable, "-c", CHILD_PRELUDE + textwrap.dedent(script),
                    path, prefix, "20",
                ],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
            )
            for prefix in ("alpha", "beta")
        ]
        for child in children:
            out, err = child.communicate(timeout=120)
            assert child.returncode == 0, err
            assert "done" in out
        store = ResultStore(path)
        expected = {f"alpha{i}" for i in range(20)} | {f"beta{i}" for i in range(20)}
        assert {key for key, _, _ in store.entries()} == expected

    def test_in_process_interleaving_and_refresh(self, tmp_path):
        path = str(tmp_path / "shared.journal")
        a = ResultStore(path, format="journal")
        b = ResultStore(path, format="journal")
        a.put("a1", sample_summary()); a.flush()
        b.put("b1", sample_summary()); b.flush()  # absorbs a1
        a.put("a2", sample_summary()); a.flush()  # absorbs b1
        assert b.refresh_from_disk() == 1  # a2
        assert a.refresh_from_disk() == 0  # already absorbed b1 at flush
        assert len(a) == len(b) == 3
        assert b.absorbed_records == 2

    def test_peer_compaction_resync_loses_nothing(self, tmp_path):
        path = str(tmp_path / "shared.journal")
        a = ResultStore(path, format="journal")
        b = ResultStore(path, format="journal")
        fill(a, ["a1", "a2"]); a.flush()
        fill(b, ["b1"]); b.flush()
        a.compact()  # new file generation while b holds an old offset
        assert a.compactions == 1
        b.put("b2", sample_summary())
        b.flush()  # detects the generation bump, resyncs, then appends
        assert b.compactions == 1
        union = {key for key, _, _ in ResultStore(path).entries()}
        assert union == {"a1", "a2", "b1", "b2"}

    def test_lock_released_by_dead_process(self, tmp_path):
        path = str(tmp_path / "s.journal")
        script = """
        from repro.store import StoreLock
        lock = StoreLock(sys.argv[1])
        assert lock.try_acquire()
        print("locked", flush=True)
        import time
        time.sleep(60)
        """
        child = subprocess.Popen(
            [sys.executable, "-c", CHILD_PRELUDE + textwrap.dedent(script), path],
            stdout=subprocess.PIPE, text=True, env=dict(os.environ),
        )
        try:
            assert child.stdout.readline().strip() == "locked"
            lock = StoreLock(path, timeout=0.5)
            assert not lock.try_acquire()  # held by the live child
            child.kill()
            child.wait(timeout=30)
            deadline = time.monotonic() + 10
            acquired = False
            while time.monotonic() < deadline and not acquired:
                acquired = lock.try_acquire()  # kernel released it on death
                if not acquired:
                    time.sleep(0.05)
            assert acquired
            lock.release()
        finally:
            if child.poll() is None:
                child.kill()
                child.wait(timeout=30)


# ---------------------------------------------------------------------------
# Formats and migration
# ---------------------------------------------------------------------------

class TestFormatsAndMigration:
    def test_json_store_migrates_to_journal_on_open(self, tmp_path):
        path = str(tmp_path / "old.json")
        legacy = ResultStore(path, format="json")
        assert isinstance(legacy, JsonStore)
        fill(legacy, ["k1", "k2"])
        legacy.close()
        assert detect_format(path) == "json"

        migrated = ResultStore(path, format="journal")
        assert isinstance(migrated, JournalStore)
        assert detect_format(path) == "journal"
        assert len(migrated) == 2 and migrated.get("k1") is not None

    def test_v1_json_migrates_through_to_journal(self, tmp_path):
        path = str(tmp_path / "v1.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "version": 1,
                    "results": {
                        "oldkey": {
                            "result": sample_summary().to_dict(),
                            "meta": {"series": "S"},
                        }
                    },
                },
                handle,
            )
        store = ResultStore(path, format="journal")
        assert store.migrated == 1
        assert store.get("oldkey") is not None
        clone = ResultStore(path)
        assert isinstance(clone, JournalStore)
        record = clone.get_record("oldkey")
        assert record.provenance.get("migrated_from") == 1

    def test_auto_preserves_existing_json(self, tmp_path):
        path = str(tmp_path / "s.json")
        store = ResultStore(path)  # fresh + auto -> legacy-compatible json
        assert isinstance(store, JsonStore)
        fill(store, ["k"])
        store.close()
        assert detect_format(path) == "json"
        payload = json.load(open(path, encoding="utf-8"))
        assert payload["version"] == 2 and "k" in payload["results"]
        assert isinstance(ResultStore(path), JsonStore)

    def test_json_over_journal_is_refused(self, tmp_path):
        path = str(tmp_path / "s.journal")
        store = ResultStore(path, format="journal")
        fill(store, ["k"])
        store.flush()
        with pytest.raises(StoreError):
            ResultStore(path, format="json")

    def test_strict_open_errors(self, tmp_path):
        with pytest.raises(StoreError):
            ResultStore(str(tmp_path / "missing.journal"), strict=True,
                        format="journal")
        garbage = tmp_path / "garbage.bin"
        garbage.write_bytes(b"\x00\x01\x02 not a store")
        with pytest.raises(StoreError):
            ResultStore(str(garbage), strict=True, format="journal")

    def test_migration_never_destroys_unreadable_json(self, tmp_path):
        # journal-format open of a damaged JSON file must raise, not replace
        # the file with an empty journal.
        path = tmp_path / "broken.json"
        path.write_text("{oops", encoding="utf-8")
        with pytest.raises(StoreError):
            ResultStore(str(path), format="journal")
        assert path.read_text(encoding="utf-8") == "{oops"


# ---------------------------------------------------------------------------
# Legacy JSON store durability (satellites 1 + 2)
# ---------------------------------------------------------------------------

class TestJsonStoreDurability:
    def test_concurrent_writer_warning(self, tmp_path):
        path = str(tmp_path / "s.json")
        first = ResultStore(path, format="json")
        fill(first, ["k1"])  # first write acquires the writer lock
        second = ResultStore(path, format="json")
        with pytest.warns(ConcurrentWriterWarning):
            second.put("k2", sample_summary())
        first.close()

    def test_concurrent_writer_strict_is_error(self, tmp_path):
        path = str(tmp_path / "s.json")
        first = ResultStore(path, format="json")
        fill(first, ["k1"])
        first.flush()
        second = ResultStore(path, strict=True)
        assert isinstance(second, JsonStore)
        with pytest.raises(StoreError):
            second.put("k2", sample_summary())
        first.close()

    def test_readonly_open_never_touches_the_lock(self, tmp_path):
        path = str(tmp_path / "s.json")
        writer = ResultStore(path, format="json")
        fill(writer, ["k1"])
        writer.flush()
        # an inspect-style strict open while the writer is live: fine
        reader = ResultStore(path, strict=True)
        assert len(reader) == 1
        assert reader.describe()["lock_held"] is False
        writer.close()

    def test_lock_frees_on_close_for_next_writer(self, tmp_path):
        path = str(tmp_path / "s.json")
        first = ResultStore(path, format="json")
        fill(first, ["k1"])
        first.close()
        second = ResultStore(path, format="json")
        import warnings as warnings_module
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error", ConcurrentWriterWarning)
            second.put("k2", sample_summary())  # no warning: lock was freed
        second.close()

    def test_flush_byte_format_unchanged(self, tmp_path):
        # the satellite adds fsyncs only: the written bytes stay the exact
        # legacy {"version": 2, "results": {...}} json.dump shape.
        path = str(tmp_path / "s.json")
        store = ResultStore(path, format="json")
        store.put("k", sample_summary(), meta={"series": "S"})
        store.close()
        payload = json.load(open(path, encoding="utf-8"))
        assert set(payload) == {"version", "results"}
        entry = payload["results"]["k"]
        assert set(entry) == {"record", "meta"}
        assert entry["record"]["schema_version"] == 2


# ---------------------------------------------------------------------------
# Shared-store sweep resume (real run_jobs)
# ---------------------------------------------------------------------------

def _tiny_jobs(count: int, seed_base: int) -> list:
    jobs = []
    for offset in range(count):
        config = SimulationConfig(
            warmup_cycles=150, measure_cycles=300, seed=seed_base + offset
        ).with_load(0.3)
        jobs.append(
            Job(
                key=config_key(config), series="shared", load=0.3,
                seed=config.seed, config=config,
            )
        )
    return jobs


class TestSharedSweepResume:
    def test_resumed_sweep_recomputes_nothing(self, tmp_path):
        path = str(tmp_path / "s.journal")
        jobs = _tiny_jobs(4, seed_base=11)
        first = ResultStore(path, format="journal")
        stats = run_jobs(jobs, workers=1, store=first)
        assert stats.executed == 4
        first.flush()
        # a second sweep process (modeled by a fresh store object) resumes
        resumed = ResultStore(path)
        stats = run_jobs(jobs, workers=1, store=resumed)
        assert stats.cache_hits == 4 and stats.executed == 0

    def test_sweep_absorbs_peer_results_before_dispatch(self, tmp_path):
        path = str(tmp_path / "s.journal")
        jobs = _tiny_jobs(4, seed_base=31)
        # store B opens first (empty view of the shared journal) ...
        b = ResultStore(path, format="journal")
        # ... then a peer sweep A computes and flushes half the jobs
        a = ResultStore(path, format="journal")
        stats_a = run_jobs(jobs[:2], workers=1, store=a)
        assert stats_a.executed == 2
        a.flush()
        # B's sweep re-reads the shared journal before dispatch: the peer's
        # two results become cache hits, only the rest simulate.
        stats_b = run_jobs(jobs, workers=1, store=b)
        assert stats_b.store_absorbed == 2
        assert stats_b.cache_hits == 2
        assert stats_b.executed == 2
        b.flush()
        union = {key for key, _, _ in ResultStore(path).entries()}
        assert union == {job.key for job in jobs}
