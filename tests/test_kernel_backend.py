"""Backend selection and fallback behavior of the vectorized kernel.

The kernel itself is covered by the trace-identity matrix in
``test_alloc_equivalence.py`` and the vectorized golden variants in
``test_golden_results.py``; this module covers the *selection* machinery:

* ``backend="vectorized"`` without numpy raises an ImportError naming the
  ``[fast]`` extra (numpy stays an optional dependency);
* ``backend="auto"`` without numpy degrades to python with exactly one
  process-level warning;
* configurations outside the support envelope (adaptive routing, DAMQ,
  subclassed VC selection) degrade with a warning under an explicit
  ``vectorized`` request and silently under ``auto`` — and the fallback
  run is trace-identical to a plain python run;
* a Session with a stall-observing probe rebuilds a vectorized simulation
  on the python backend (or refuses an adopted one).
"""

from __future__ import annotations

import dataclasses
import sys
import warnings

import pytest

import repro.kernel as kernel
from repro.config import RouterConfig, RoutingConfig, SimulationConfig, TrafficConfig
from repro.core import vc_selection
from repro.experiments.runner import TINY
from repro.experiments.topologies import minimal_feasible_arrangement
from repro.probes import AllocStallProbe
from repro.session import Session
from repro.simulation import Simulation


def _config(algorithm="min", buffer_organization="static",
            vc_sel="jsq") -> SimulationConfig:
    network = dataclasses.replace(
        TINY.network_for("dragonfly"), local_latency=4, global_latency=12
    )
    return SimulationConfig(
        network=network,
        router=RouterConfig(buffer_organization=buffer_organization),
        routing=RoutingConfig(
            algorithm=algorithm, vc_policy="baseline", vc_selection=vc_sel
        ),
        arrangement=minimal_feasible_arrangement(network, algorithm, "baseline"),
        traffic=TrafficConfig(pattern="uniform", load=0.5),
        warmup_cycles=60,
        measure_cycles=120,
        seed=7,
    )


def _trace_and_result(sim: Simulation):
    trace: list = []
    sim.traffic.delivery_hook = (
        lambda packet, cycle: trace.append(
            (packet.pid, packet.src_node, packet.dst_node, packet.hops, cycle)
        )
    )
    result = dataclasses.asdict(sim.run())
    return trace, result


_HAS_NUMPY = kernel.numpy_or_none() is not None
needs_numpy = pytest.mark.skipif(
    not _HAS_NUMPY, reason="vectorized backend needs numpy"
)


def test_invalid_backend_rejected():
    with pytest.raises(ValueError, match="backend must be one of"):
        Simulation(_config(), backend="jit")


def test_session_backend_requires_config():
    sim = Simulation(_config())
    with pytest.raises(ValueError, match="only valid with config"):
        Session(simulation=sim, backend="python")


def test_vectorized_without_numpy_raises_naming_fast_extra(monkeypatch):
    # None in sys.modules makes ``import numpy`` raise ImportError even when
    # numpy is installed, so this leg runs identically on both CI legs.
    monkeypatch.setitem(sys.modules, "numpy", None)
    with pytest.raises(ImportError, match=r"\[fast\]"):
        Simulation(_config(), backend="vectorized")


def test_auto_without_numpy_degrades_with_single_warning(monkeypatch):
    monkeypatch.setitem(sys.modules, "numpy", None)
    monkeypatch.setattr(kernel, "_warned_auto_no_numpy", False)
    with pytest.warns(RuntimeWarning, match="numpy is not installed"):
        sim = Simulation(_config(), backend="auto")
    assert sim.backend_active == "python"
    assert sim.backend_fallback_reason == "numpy not installed"
    # Second construction in the same process must stay silent.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        again = Simulation(_config(), backend="auto")
    assert again.backend_active == "python"


@needs_numpy
@pytest.mark.parametrize("algorithm,buffers,reason_fragment", [
    ("par", "static", "routing algorithm"),
    ("min", "damq", "buffer organization"),
])
def test_vectorized_unsupported_config_falls_back(algorithm, buffers,
                                                  reason_fragment):
    config = _config(algorithm=algorithm, buffer_organization=buffers)
    with pytest.warns(RuntimeWarning, match="unsupported"):
        sim = Simulation(config, backend="vectorized")
    assert sim.backend_active == "python"
    assert reason_fragment in sim.backend_fallback_reason
    # auto degrades silently for unsupported configurations.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        auto_sim = Simulation(config, backend="auto")
    assert auto_sim.backend_active == "python"


class _TracingJsq(vc_selection.JoinShortestQueue):
    """Subclass whose ``choose`` the kernel cannot assume anything about."""

    def choose(self, candidates, free_list, rng):
        return super().choose(candidates, free_list, rng)


@needs_numpy
def test_subclassed_selection_falls_back_trace_identical(monkeypatch):
    monkeypatch.setitem(vc_selection._SELECTIONS, "jsq", _TracingJsq)
    config = _config(vc_sel="jsq")

    python_sim = Simulation(config)
    assert isinstance(python_sim.selection, _TracingJsq)
    python_trace, python_result = _trace_and_result(python_sim)
    assert python_trace, "degenerate config: no deliveries"

    with pytest.warns(RuntimeWarning, match="subclassed VC selection"):
        fallback_sim = Simulation(config, backend="vectorized")
    assert fallback_sim.backend_active == "python"
    assert "subclassed VC selection" in fallback_sim.backend_fallback_reason
    fallback_trace, fallback_result = _trace_and_result(fallback_sim)
    assert fallback_trace == python_trace
    assert fallback_result == python_result


@needs_numpy
def test_session_rebuilds_python_backend_for_stall_probe():
    config = _config()
    with pytest.warns(RuntimeWarning, match="on_alloc_stall"):
        session = Session(config, probes=[AllocStallProbe()],
                          backend="vectorized")
    assert session.sim.backend_active == "python"

    plain = Session(config, probes=[AllocStallProbe()])
    for s in (session, plain):
        s.warmup()
        s.measure()
    assert session.record().summary == plain.record().summary


@needs_numpy
def test_adopted_session_refuses_stall_probe():
    sim = Simulation(_config(), backend="vectorized")
    assert sim.backend_active == "vectorized"
    session = Session(simulation=sim)
    with pytest.raises(RuntimeError, match="rebuild the adopted Simulation"):
        session.attach(AllocStallProbe())
