"""Configuration validation, metrics accounting and the engine event wheel."""

import pytest

from repro.config import (
    NetworkConfig,
    RouterConfig,
    RoutingConfig,
    SimulationConfig,
    TrafficConfig,
)
from repro.core.arrangement import VcArrangement
from repro.engine import Engine
from repro.metrics import MetricsCollector
from repro.packet import Packet, RouteKind


class TestConfigValidation:
    def test_default_config_is_valid(self):
        SimulationConfig().validate()

    def test_baseline_valiant_needs_4_2(self):
        config = SimulationConfig(
            routing=RoutingConfig(algorithm="val"),
            arrangement=VcArrangement.single_class(2, 1),
        )
        with pytest.raises(ValueError):
            config.validate()

    def test_flexvc_valiant_allowed_with_3_2(self):
        SimulationConfig(
            routing=RoutingConfig(algorithm="val", vc_policy="flexvc"),
            arrangement=VcArrangement.single_class(3, 2),
        ).validate()

    def test_flexvc_valiant_rejected_with_2_1(self):
        config = SimulationConfig(
            routing=RoutingConfig(algorithm="val", vc_policy="flexvc"),
            arrangement=VcArrangement.single_class(2, 1),
        )
        with pytest.raises(ValueError):
            config.validate()

    def test_reactive_requires_reply_vcs(self):
        config = SimulationConfig(
            traffic=TrafficConfig(reactive=True),
            arrangement=VcArrangement.single_class(4, 2),
        )
        with pytest.raises(ValueError):
            config.validate()

    def test_pb_baseline_reactive_needs_reply_vcs_for_val(self):
        config = SimulationConfig(
            routing=RoutingConfig(algorithm="pb"),
            traffic=TrafficConfig(reactive=True),
            arrangement=VcArrangement.request_reply((4, 2), (2, 1)),
        )
        with pytest.raises(ValueError):
            config.validate()

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            NetworkConfig(topology="torus").validate()
        with pytest.raises(ValueError):
            RouterConfig(buffer_organization="circular").validate()
        with pytest.raises(ValueError):
            RoutingConfig(algorithm="ugal").validate()
        with pytest.raises(ValueError):
            TrafficConfig(load=2.0).validate()

    def test_with_load_and_with_seed(self):
        config = SimulationConfig()
        assert config.with_load(0.9).traffic.load == 0.9
        assert config.with_seed(7).seed == 7
        # the originals are untouched (frozen dataclasses)
        assert config.traffic.load == 0.5 and config.seed == 1

    def test_port_capacity_override(self):
        router = RouterConfig(local_port_phits=64)
        assert router.port_capacity(num_vcs=4, is_global=False) == 64
        assert router.vc_capacity(num_vcs=4, is_global=False) == 16
        default = RouterConfig()
        assert default.port_capacity(num_vcs=2, is_global=False) == 64


class TestMetrics:
    def _collector(self):
        collector = MetricsCollector(num_nodes=10, packet_size=8)
        collector.open_window(100, 200)
        return collector

    def test_throughput_counts_only_window_deliveries(self):
        collector = self._collector()
        inside = Packet(src_node=0, dst_node=1, size_phits=8, created_at=120)
        outside = Packet(src_node=0, dst_node=1, size_phits=8, created_at=10)
        collector.record_generation(inside, 120)
        collector.record_generation(outside, 10)
        inside.delivered_at = 150
        outside.delivered_at = 90
        collector.record_delivery(outside, 90)
        collector.record_delivery(inside, 150)
        result = collector.result(offered_load=0.5)
        assert result.phits_delivered == 8
        assert result.accepted_load == pytest.approx(8 / (10 * 100))

    def test_latency_only_for_measured_packets(self):
        collector = self._collector()
        warmup_packet = Packet(src_node=0, dst_node=1, size_phits=8, created_at=50)
        collector.record_generation(warmup_packet, 50)
        warmup_packet.delivered_at = 130
        collector.record_delivery(warmup_packet, 130)
        assert collector.latencies == []

    def test_misrouted_fraction(self):
        collector = self._collector()
        for kind in (RouteKind.MINIMAL, RouteKind.VALIANT):
            packet = Packet(src_node=0, dst_node=1, size_phits=8, created_at=110)
            packet.route_kind = kind
            collector.record_generation(packet, 110)
            packet.delivered_at = 160
            collector.record_delivery(packet, 160)
        result = collector.result(offered_load=0.5)
        assert result.misrouted_fraction == pytest.approx(0.5)

    def test_window_required(self):
        collector = MetricsCollector(num_nodes=4, packet_size=8)
        with pytest.raises(ValueError):
            collector.result(offered_load=0.1)


class TestEngine:
    def test_events_fire_at_their_cycle(self):
        engine = Engine()
        fired = []
        engine.schedule(3, lambda t: fired.append(("a", t)))
        engine.schedule(1, lambda t: fired.append(("b", t)))
        engine.run(5)
        assert fired == [("b", 1), ("a", 3)]

    def test_cannot_schedule_in_the_past(self):
        engine = Engine()
        engine.run(5)
        with pytest.raises(ValueError):
            engine.schedule(2, lambda t: None)

    def test_run_until(self):
        engine = Engine()
        engine.run_until(42)
        assert engine.now == 42

    def test_registered_router_stepped_only_when_busy(self):
        class Stepper:
            def __init__(self, busy):
                self.busy = busy
                self.steps = 0

            def has_work(self):
                return self.busy

            def step(self, now):
                self.steps += 1

        busy, idle = Stepper(True), Stepper(False)
        engine = Engine()
        engine.register_router(busy)
        engine.register_router(idle)
        engine.run(10)
        assert busy.steps == 10 and idle.steps == 0
