"""Configuration validation, metrics accounting and the engine event wheel."""

import pytest

from repro.config import (
    NetworkConfig,
    RouterConfig,
    RoutingConfig,
    SimulationConfig,
    TrafficConfig,
)
from repro.core.arrangement import VcArrangement
from repro.engine import Engine
from repro.metrics import MetricsCollector
from repro.packet import Packet, RouteKind


class TestConfigValidation:
    def test_default_config_is_valid(self):
        SimulationConfig().validate()

    def test_baseline_valiant_needs_4_2(self):
        config = SimulationConfig(
            routing=RoutingConfig(algorithm="val"),
            arrangement=VcArrangement.single_class(2, 1),
        )
        with pytest.raises(ValueError):
            config.validate()

    def test_flexvc_valiant_allowed_with_3_2(self):
        SimulationConfig(
            routing=RoutingConfig(algorithm="val", vc_policy="flexvc"),
            arrangement=VcArrangement.single_class(3, 2),
        ).validate()

    def test_flexvc_valiant_rejected_with_2_1(self):
        config = SimulationConfig(
            routing=RoutingConfig(algorithm="val", vc_policy="flexvc"),
            arrangement=VcArrangement.single_class(2, 1),
        )
        with pytest.raises(ValueError):
            config.validate()

    def test_reactive_requires_reply_vcs(self):
        config = SimulationConfig(
            traffic=TrafficConfig(reactive=True),
            arrangement=VcArrangement.single_class(4, 2),
        )
        with pytest.raises(ValueError):
            config.validate()

    def test_pb_baseline_reactive_needs_reply_vcs_for_val(self):
        config = SimulationConfig(
            routing=RoutingConfig(algorithm="pb"),
            traffic=TrafficConfig(reactive=True),
            arrangement=VcArrangement.request_reply((4, 2), (2, 1)),
        )
        with pytest.raises(ValueError):
            config.validate()

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            NetworkConfig(topology="torus").validate()
        with pytest.raises(ValueError):
            RouterConfig(buffer_organization="circular").validate()
        with pytest.raises(ValueError):
            RoutingConfig(algorithm="ugal").validate()
        with pytest.raises(ValueError):
            TrafficConfig(load=2.0).validate()

    def test_with_load_and_with_seed(self):
        config = SimulationConfig()
        assert config.with_load(0.9).traffic.load == 0.9
        assert config.with_seed(7).seed == 7
        # the originals are untouched (frozen dataclasses)
        assert config.traffic.load == 0.5 and config.seed == 1

    def test_port_capacity_override(self):
        router = RouterConfig(local_port_phits=64)
        assert router.port_capacity(num_vcs=4, is_global=False) == 64
        assert router.vc_capacity(num_vcs=4, is_global=False) == 16
        default = RouterConfig()
        assert default.port_capacity(num_vcs=2, is_global=False) == 64


class TestNetworkConfigRegistry:
    def test_legacy_and_params_construction_equivalent(self):
        legacy = NetworkConfig(topology="dragonfly", h=3, num_groups=5)
        explicit = NetworkConfig(topology="dragonfly", params={"h": 3, "num_groups": 5})
        assert legacy == explicit
        assert legacy.param("h") == 3
        fb_legacy = NetworkConfig(topology="flattened_butterfly", k1=5, k2=3,
                                  fb_nodes_per_router=1)
        fb_explicit = NetworkConfig(
            topology="flattened_butterfly",
            params={"k1": 5, "k2": 3, "nodes_per_router": 1},
        )
        assert fb_legacy == fb_explicit

    def test_irrelevant_legacy_fields_ignored(self):
        # The old flat dataclass carried every topology's fields at once;
        # passing a Flattened Butterfly field to a Dragonfly stays a no-op.
        assert NetworkConfig(topology="dragonfly", h=2, k1=8) == \
            NetworkConfig(topology="dragonfly", h=2)

    def test_same_named_legacy_kwargs_reach_new_topologies(self):
        # Megafly never existed under the flat scheme, so h/num_groups must
        # pass through to its params rather than being silently dropped.
        config = NetworkConfig(topology="megafly", h=4, num_groups=9)
        assert config.param("h") == 4
        assert config.param("num_groups") == 9

    def test_untranslatable_legacy_kwarg_on_new_topology_rejected(self):
        with pytest.raises(TypeError):
            NetworkConfig(topology="megafly", fb_nodes_per_router=2)
        with pytest.raises(TypeError):
            NetworkConfig(topology="hyperx", k1=8)

    def test_unknown_keyword_rejected(self):
        with pytest.raises(TypeError):
            NetworkConfig(topology="dragonfly", bogus=1)

    def test_unknown_param_rejected_at_validation(self):
        config = NetworkConfig(topology="dragonfly", params={"bogus": 1})
        with pytest.raises(ValueError):
            config.validate()

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            NetworkConfig(topology="dragonfly", h=0).validate()
        with pytest.raises(ValueError):
            NetworkConfig(topology="flattened_butterfly", k1=1).validate()
        with pytest.raises(ValueError):
            NetworkConfig(topology="hyperx", params={"s": (1, 4)}).validate()
        with pytest.raises(ValueError):
            NetworkConfig(topology="megafly", params={"spines": 0}).validate()

    def test_build_through_registry(self):
        from repro.topology import Dragonfly, HyperX, Megafly

        assert isinstance(NetworkConfig(topology="dragonfly", h=2).build(), Dragonfly)
        assert isinstance(
            NetworkConfig(topology="hyperx", params={"s": (3, 3)}).build(), HyperX
        )
        mf = NetworkConfig(topology="megafly",
                           params={"spines": 2, "leaves": 2, "h": 1}).build()
        assert isinstance(mf, Megafly)

    def test_aliases_resolve(self):
        from repro.topology import TOPOLOGIES

        assert TOPOLOGIES.get("fb").name == "flattened_butterfly"
        assert TOPOLOGIES.get("dragonfly+").name == "megafly"
        assert "hyperx" in TOPOLOGIES

    def test_params_are_hashable_and_stable(self):
        config = NetworkConfig(topology="hyperx", params={"s": (4, 3), "k": 1})
        hash(config)  # sorted (name, value) tuples keep the dataclass hashable
        assert dict(config.params)["s"] == (4, 3)

    def test_params_normalized_against_defaults(self):
        # Spelling out a default must not change equality or the content
        # hash the orchestrator's result store keys on.
        from repro.experiments.orchestrator import config_key

        implicit = NetworkConfig(topology="dragonfly")
        explicit = NetworkConfig(topology="dragonfly", h=2)
        assert implicit == explicit
        assert config_key(SimulationConfig(network=implicit)) == \
            config_key(SimulationConfig(network=explicit))

    def test_list_params_frozen_to_tuples(self):
        # JSON-derived lists must not break hashability.
        config = NetworkConfig(topology="hyperx", params={"s": [4, 3, 3]})
        hash(config)
        assert dict(config.params)["s"] == (4, 3, 3)
        config.validate()


class TestUntypedBaselineRequirements:
    """Baseline VC validation must match the runtime slot arithmetic on
    untyped (no link-type restriction) networks — a complete graph needs
    1/3/4 local VCs for MIN/VAL/PAR (phase offsets advance by max(2, d))."""

    NET = NetworkConfig(topology="hyperx", params={"s": (6,), "nodes_per_router": 2})

    def _config(self, algorithm, local, global_=1):
        from repro.core.arrangement import VcArrangement

        return SimulationConfig(
            network=self.NET,
            routing=RoutingConfig(algorithm=algorithm),
            arrangement=VcArrangement.single_class(local, global_),
        )

    def test_underprovisioned_val_rejected(self):
        with pytest.raises(ValueError):
            self._config("val", 2).validate()
        self._config("val", 3).validate()

    def test_underprovisioned_par_rejected(self):
        with pytest.raises(ValueError):
            self._config("par", 3).validate()
        self._config("par", 4).validate()

    def test_min_single_vc_allowed_on_complete_graph(self):
        self._config("min", 1).validate()

    def test_diameter2_matches_paper_requirements(self):
        # FB with k2=1 degenerates to diameter 1; a genuine untyped
        # diameter-2 network keeps the paper's 2/4/5 requirements — checked
        # through the reference helpers the typed path shares.
        from repro.core.link_types import DIAMETER2_MIN, reference_vc_requirements_for

        assert reference_vc_requirements_for(DIAMETER2_MIN, "VAL") == (4, 0)
        assert reference_vc_requirements_for(DIAMETER2_MIN, "PAR") == (5, 0)


class TestDeadlockWindowConfig:
    def test_default_matches_legacy_constant(self):
        from repro.simulation import DEADLOCK_WINDOW_CYCLES

        assert SimulationConfig().deadlock_window_cycles == DEADLOCK_WINDOW_CYCLES

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(deadlock_window_cycles=0).validate()
        SimulationConfig(deadlock_window_cycles=1).validate()

    def test_threaded_through_to_ledger_check(self):
        from repro.simulation import Simulation

        config = SimulationConfig(
            warmup_cycles=10, measure_cycles=30, deadlock_window_cycles=5
        ).with_load(0.0)
        sim = Simulation(config)
        # Plant a resident packet so the ledger is non-empty, then check the
        # configured window (not the 2500-cycle default) drives the verdict.
        sim._resident_ledger.count = 1
        sim.engine.run_until(config.total_cycles())
        assert sim._deadlock_suspected()  # 40 cycles idle > window of 5


class TestMetrics:
    def _collector(self):
        collector = MetricsCollector(num_nodes=10, packet_size=8)
        collector.open_window(100, 200)
        return collector

    def test_throughput_counts_only_window_deliveries(self):
        collector = self._collector()
        inside = Packet(src_node=0, dst_node=1, size_phits=8, created_at=120)
        outside = Packet(src_node=0, dst_node=1, size_phits=8, created_at=10)
        collector.record_generation(inside, 120)
        collector.record_generation(outside, 10)
        inside.delivered_at = 150
        outside.delivered_at = 90
        collector.record_delivery(outside, 90)
        collector.record_delivery(inside, 150)
        result = collector.result(offered_load=0.5)
        assert result.phits_delivered == 8
        assert result.accepted_load == pytest.approx(8 / (10 * 100))

    def test_latency_only_for_measured_packets(self):
        collector = self._collector()
        warmup_packet = Packet(src_node=0, dst_node=1, size_phits=8, created_at=50)
        collector.record_generation(warmup_packet, 50)
        warmup_packet.delivered_at = 130
        collector.record_delivery(warmup_packet, 130)
        assert collector.latencies == []

    def test_misrouted_fraction(self):
        collector = self._collector()
        for kind in (RouteKind.MINIMAL, RouteKind.VALIANT):
            packet = Packet(src_node=0, dst_node=1, size_phits=8, created_at=110)
            packet.route_kind = kind
            collector.record_generation(packet, 110)
            packet.delivered_at = 160
            collector.record_delivery(packet, 160)
        result = collector.result(offered_load=0.5)
        assert result.misrouted_fraction == pytest.approx(0.5)

    def test_window_required(self):
        collector = MetricsCollector(num_nodes=4, packet_size=8)
        with pytest.raises(ValueError):
            collector.result(offered_load=0.1)


class TestEngine:
    def test_events_fire_at_their_cycle(self):
        engine = Engine()
        fired = []
        engine.schedule(3, lambda t: fired.append(("a", t)))
        engine.schedule(1, lambda t: fired.append(("b", t)))
        engine.run(5)
        assert fired == [("b", 1), ("a", 3)]

    def test_cannot_schedule_in_the_past(self):
        engine = Engine()
        engine.run(5)
        with pytest.raises(ValueError):
            engine.schedule(2, lambda t: None)

    def test_run_until(self):
        engine = Engine()
        engine.run_until(42)
        assert engine.now == 42

    def test_registered_router_stepped_only_when_busy(self):
        class Stepper:
            def __init__(self, busy):
                self.busy = busy
                self.steps = 0

            def has_work(self):
                return self.busy

            def step(self, now):
                self.steps += 1

        busy, idle = Stepper(True), Stepper(False)
        engine = Engine()
        engine.register_router(busy)
        engine.register_router(idle)
        engine.run(10)
        assert busy.steps == 10 and idle.steps == 0
