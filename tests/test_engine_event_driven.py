"""Event-driven engine tests: activity tracking, wakes, fast-forward, determinism."""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import SimulationConfig
from repro.core.arrangement import VcArrangement
from repro.engine import Engine
from repro.simulation import Simulation


def make_config(**overrides) -> SimulationConfig:
    base = SimulationConfig(warmup_cycles=150, measure_cycles=400)
    return dataclasses.replace(base, **overrides)


class _Stepper:
    """Minimal engine client used to probe the activity protocol."""

    def __init__(self):
        self.busy = False
        self.steps = []
        self.engine_index = -1
        self.engine_activate = None

    def has_work(self):
        return self.busy

    def step(self, now):
        self.steps.append(now)


class TestActivityTracking:
    def test_idle_router_is_dropped_from_the_active_set(self):
        engine = Engine()
        stepper = _Stepper()
        engine.register_router(stepper)
        assert engine.active_count() == 1
        engine.run(3)
        assert engine.active_count() == 0
        assert stepper.steps == []

    def test_activate_restores_stepping(self):
        engine = Engine()
        stepper = _Stepper()
        engine.register_router(stepper)
        engine.run(2)  # deactivates
        stepper.busy = True
        engine.activate(stepper)
        engine.run(1)
        assert stepper.steps == [2]

    def test_schedule_wake_reactivates_at_cycle(self):
        engine = Engine()
        stepper = _Stepper()
        engine.register_router(stepper)
        engine.run(1)  # deactivate
        stepper.busy = True
        engine.schedule_wake(5, stepper.engine_index)
        engine.run_until(8)
        assert stepper.steps == [5, 6, 7]


class TestFastForward:
    def test_skips_to_scheduled_events(self):
        engine = Engine()
        fired = []
        engine.schedule(100, fired.append)
        engine.schedule(5000, fired.append)
        engine.run_until(10_000)
        assert fired == [100, 5000]
        assert engine.now == 10_000
        # Only 3 cycles actually ticked (the two event cycles + none after).
        assert engine.idle_cycles_skipped >= 10_000 - 3

    def test_callback_disables_skipping(self):
        engine = Engine()
        seen = []
        engine.run_until(50, callback=seen.append)
        assert len(seen) == 50
        assert engine.idle_cycles_skipped == 0

    def test_busy_stepper_prevents_skipping(self):
        engine = Engine()
        stepper = _Stepper()
        stepper.busy = True
        engine.register_router(stepper)
        engine.run_until(20)
        assert len(stepper.steps) == 20
        assert engine.idle_cycles_skipped == 0

    def test_non_quiescent_generator_prevents_skipping(self):
        class Source:
            def __init__(self):
                self.ticks = 0

            def tick(self, cycle):
                self.ticks += 1

            def quiescent(self):
                return False

        engine = Engine()
        source = Source()
        engine.register_traffic(source)
        engine.run_until(30)
        assert source.ticks == 30

    def test_zero_load_simulation_fast_forwards(self):
        sim = Simulation(make_config().with_load(0.0))
        result = sim.run()
        assert result.packets_generated == 0
        assert sim.engine.idle_cycles_skipped > 500


class TestDeterminism:
    """Same seed => bit-identical results, run after run."""

    CONFIGS = {
        "uniform": dict(),
        "flexvc": dict(
            routing=dataclasses.replace(
                SimulationConfig().routing, vc_policy="flexvc"
            ),
            arrangement=VcArrangement.single_class(4, 2),
        ),
        "reactive": dict(
            traffic=dataclasses.replace(
                SimulationConfig().traffic, reactive=True, load=0.4
            ),
            arrangement=VcArrangement.request_reply((2, 1), (2, 1)),
        ),
    }

    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_repeated_runs_are_bit_identical(self, name):
        config = make_config(**self.CONFIGS[name]).with_load(0.4)
        first = Simulation(config).run()
        second = Simulation(config).run()
        assert dataclasses.asdict(first) == dataclasses.asdict(second)

    def test_different_seeds_differ(self):
        config = make_config().with_load(0.4)
        a = Simulation(config).run()
        b = Simulation(config.with_seed(99)).run()
        assert dataclasses.asdict(a) != dataclasses.asdict(b)

    def test_sleeping_routers_do_not_change_results(self):
        """Forcing every router to poll every cycle must not change results."""
        config = make_config().with_load(0.3)
        reference = Simulation(config).run()

        polled = Simulation(config)
        always_on = list(range(len(polled.routers)))
        original_tick = polled.engine.tick

        def tick_all():
            polled.engine._active.update(always_on)
            original_tick()

        polled.engine.tick = tick_all
        result = polled.run()
        assert dataclasses.asdict(result) == dataclasses.asdict(reference)


class TestResidentLedger:
    def test_ledger_matches_router_sum(self):
        sim = Simulation(make_config().with_load(0.3))
        checks = []
        original_tick = sim.engine.tick

        def tick():
            original_tick()
            checks.append(
                sim.total_resident_packets()
                == sum(r.resident_packets for r in sim.routers)
            )

        sim.engine.tick = tick
        sim.run()
        assert checks and all(checks)
