"""Orchestrator tests: job expansion, backends, determinism, result store."""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import SimulationConfig
from repro.experiments.orchestrator import (
    ProcessPoolBackend,
    ResultStore,
    SerialBackend,
    SweepSpec,
    config_key,
    orchestration,
    run_jobs,
    run_sweep,
)
from repro.experiments.runner import load_sweep, run_point
from repro.experiments import Series
from repro.metrics import SimulationResult
from repro.simulation import run_seeds


def make_config(**overrides) -> SimulationConfig:
    base = SimulationConfig(warmup_cycles=150, measure_cycles=300)
    return dataclasses.replace(base, **overrides)


def build_config() -> SimulationConfig:
    return make_config()


class TestConfigKey:
    def test_equal_configs_share_a_key(self):
        assert config_key(make_config()) == config_key(make_config())

    def test_different_configs_differ(self):
        assert config_key(make_config()) != config_key(make_config(seed=2))
        assert config_key(make_config()) != config_key(make_config().with_load(0.7))

    def test_structural_equality_not_identity(self):
        a = make_config().with_load(0.3)
        b = make_config().with_load(0.1).with_load(0.3)
        assert config_key(a) == config_key(b)


class TestSweepSpec:
    def test_expansion_order_and_keys(self):
        spec = SweepSpec(
            series=[("a", build_config), ("b", build_config)],
            loads=[0.1, 0.2],
            seeds=2,
        )
        jobs = spec.expand()
        assert len(jobs) == 2 * 2 * 2
        assert [j.series for j in jobs[:4]] == ["a", "a", "a", "a"]
        assert jobs[0].seed == 1 and jobs[1].seed == 2
        assert jobs[0].config.traffic.load == pytest.approx(0.1)
        # a/b share configs at the same (load, seed) -> same hash
        assert jobs[0].key == jobs[4].key

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            SweepSpec(series=[("a", build_config), ("a", build_config)], loads=[0.1])


class TestDeterminism:
    def test_serial_and_parallel_results_identical(self):
        spec = SweepSpec(
            series=[("uniform", build_config)], loads=[0.15, 0.3], seeds=2,
        )
        serial = run_sweep(spec, workers=1)
        parallel = run_sweep(spec, workers=2)
        assert serial.raw.keys() == parallel.raw.keys()
        for key, result in serial.raw.items():
            assert dataclasses.asdict(result) == dataclasses.asdict(parallel.raw[key])

    def test_run_seeds_matches_serial_wrapper(self):
        config = make_config().with_load(0.2)
        serial = run_seeds(config, seeds=2, workers=1)
        parallel = run_seeds(config, seeds=2, workers=2)
        assert [dataclasses.asdict(r) for r in serial] == [
            dataclasses.asdict(r) for r in parallel
        ]
        # seed order is preserved regardless of completion order
        assert serial[0].packets_generated != 0

    def test_pool_backend_falls_back_cleanly(self):
        # Direct backend smoke test (the pool may degrade to serial in
        # restricted environments; results are identical either way).
        # Backends deliver RunRecords; everything except the wall-clock
        # provenance is deterministic across backends.
        from repro.record import RunRecord

        spec = SweepSpec(series=[("s", build_config)], loads=[0.1], seeds=1)
        jobs = spec.expand()
        got = {}
        ProcessPoolBackend(2).run(jobs, lambda job, res: got.__setitem__(job.key, res))
        ref = {}
        SerialBackend().run(jobs, lambda job, res: ref.__setitem__(job.key, res))
        assert got.keys() == ref.keys()
        for key in ref:
            assert isinstance(got[key], RunRecord)
            assert dataclasses.asdict(got[key].summary) == dataclasses.asdict(
                ref[key].summary
            )
            assert got[key].provenance["engine_cycles"] == \
                ref[key].provenance["engine_cycles"]
            assert got[key].provenance["events_processed"] == \
                ref[key].provenance["events_processed"]


class TestResultStore:
    def test_roundtrip_and_cache_hit(self, tmp_path):
        path = str(tmp_path / "store.json")
        spec = SweepSpec(series=[("s", build_config)], loads=[0.1], seeds=1)

        store = ResultStore(path)
        first = run_sweep(spec, workers=1, store=store)
        assert first.executed == 1 and first.cache_hits == 0
        store.flush()

        # A fresh store object backed by the same file serves from cache
        # without running a single simulation.
        reopened = ResultStore(path)
        second = run_sweep(spec, workers=1, store=reopened)
        assert second.executed == 0 and second.cache_hits == 1
        key = spec.expand()[0].key
        assert dataclasses.asdict(second.raw[key]) == dataclasses.asdict(first.raw[key])

    def test_resume_skips_completed_jobs(self, tmp_path):
        """Interrupted sweeps resume: stored points are not re-simulated."""
        path = str(tmp_path / "store.json")
        spec = SweepSpec(series=[("s", build_config)], loads=[0.1, 0.25], seeds=1)
        jobs = spec.expand()

        # Simulate an interruption: only the first point was completed.
        store = ResultStore(path)
        results, hits, executed = run_jobs(jobs[:1], workers=1, store=store)
        assert executed == 1
        store.flush()

        executed_keys = []
        import repro.experiments.orchestrator as orch

        original = orch._execute_job

        def spying_execute(job):
            executed_keys.append(job.key)
            return original(job)

        orch._execute_job, saved = spying_execute, original
        try:
            resumed = run_sweep(spec, workers=1, store=ResultStore(path))
        finally:
            orch._execute_job = saved
        assert resumed.cache_hits == 1 and resumed.executed == 1
        assert executed_keys == [jobs[1].key]

    def test_refresh_bypasses_reads_but_persists(self, tmp_path):
        path = str(tmp_path / "store.json")
        spec = SweepSpec(series=[("s", build_config)], loads=[0.1], seeds=1)
        store = ResultStore(path)
        run_sweep(spec, workers=1, store=store)
        store.flush()
        forced = ResultStore(path, refresh=True)
        outcome = run_sweep(spec, workers=1, store=forced)
        assert outcome.cache_hits == 0 and outcome.executed == 1

    def test_store_survives_unknown_version(self, tmp_path):
        path = tmp_path / "store.json"
        path.write_text('{"version": 999, "results": {"x": {}}}')
        store = ResultStore(str(path))
        assert len(store) == 0


class TestContextWiring:
    def test_load_sweep_uses_context_store(self, tmp_path):
        path = str(tmp_path / "store.json")
        series = [Series("only", build_config)]
        with orchestration(workers=1, store=path):
            load_sweep(series, loads=[0.1], seeds=1)
        reopened = ResultStore(path)
        assert len(reopened) == 1

        # Second run inside a context over the same store: pure cache.
        series2 = [Series("only", build_config)]
        with orchestration(workers=1, store=reopened):
            load_sweep(series2, loads=[0.1], seeds=1)
        assert reopened.hits == 1
        assert dataclasses.asdict(series2[0].results[0]) == dataclasses.asdict(
            series[0].results[0]
        )

    def test_run_point_averages_seeds(self):
        result = run_point(make_config().with_load(0.2), seeds=2)
        assert isinstance(result, SimulationResult)
        assert result.packets_delivered > 0


class TestSerializationRoundtrip:
    def test_result_to_from_dict(self):
        from repro.simulation import run_simulation

        result = run_simulation(make_config().with_load(0.1))
        clone = SimulationResult.from_dict(result.to_dict())
        assert dataclasses.asdict(clone) == dataclasses.asdict(result)


# ---------------------------------------------------------------------------
# Crash resilience and per-job timeouts
# ---------------------------------------------------------------------------

def _resilience_jobs(count: int, seed_base: int) -> list:
    from repro.experiments.orchestrator import Job

    jobs = []
    for offset in range(count):
        config = make_config(
            warmup_cycles=50, measure_cycles=100, seed=seed_base + offset
        ).with_load(0.3)
        jobs.append(
            Job(
                key=config_key(config),
                series="resilience",
                load=0.3,
                seed=config.seed,
                config=config,
            )
        )
    return jobs


class TestCrashResilience:
    def test_worker_crash_is_retried_and_sweep_completes(self, tmp_path, monkeypatch):
        # One worker hard-exits while executing a specific job; the marker
        # file makes the crash fire exactly once, so the retry succeeds and
        # the sweep must deliver every result with correct store contents.
        jobs = _resilience_jobs(6, seed_base=21)
        marker = tmp_path / "crashed.marker"
        monkeypatch.setenv(
            "REPRO_TEST_CRASH_KEY", f"{jobs[2].key}:{marker}"
        )
        store = ResultStore(str(tmp_path / "store.json"))
        stats = run_jobs(jobs, workers=2, store=store, chunk_size=1)
        assert marker.exists()  # the crash really fired
        assert stats.failed == 0
        assert stats.retries >= 1
        assert sorted(stats.results) == sorted(job.key for job in jobs)
        # Store contents match an undisturbed serial run bit-for-bit.
        serial = run_jobs(jobs, workers=1, store=None)
        for job in jobs:
            assert dataclasses.asdict(stats.results[job.key]) == dataclasses.asdict(
                serial.results[job.key]
            )
        store.flush()
        assert list(store.failures()) == []

    def test_persistent_crash_exhausts_retries_into_typed_failure(
        self, tmp_path, monkeypatch
    ):
        from repro.experiments.orchestrator import JobFailure

        jobs = _resilience_jobs(4, seed_base=41)
        monkeypatch.setenv("REPRO_TEST_CRASH_KEY", jobs[1].key)  # every attempt
        store = ResultStore(str(tmp_path / "store.json"))
        stats = run_jobs(jobs, workers=2, store=store, chunk_size=1)
        assert stats.failed == 1
        assert sorted(stats.results) == sorted(
            job.key for job in jobs if job.key != jobs[1].key
        )
        failure = stats.failures[jobs[1].key]
        assert isinstance(failure, JobFailure)
        assert failure.reason == "worker-crash"
        assert failure.retries > 0
        # The failure is persisted as a typed store entry ...
        store.flush()
        stored = list(store.failures())
        assert len(stored) == 1 and stored[0][1].reason == "worker-crash"
        # ... that reads as a cache miss (a later sweep re-attempts the job)
        # and is invisible to the record iterator.
        assert store.get_record(jobs[1].key) is None
        assert jobs[1].key not in {key for key, _, _ in store.entries()}

    def test_hung_job_times_out_into_typed_failure(self, tmp_path, monkeypatch):
        jobs = _resilience_jobs(4, seed_base=61)
        monkeypatch.setenv("REPRO_TEST_HANG_KEY", jobs[0].key)
        monkeypatch.setenv("REPRO_TEST_HANG_SECONDS", "60")
        store = ResultStore(str(tmp_path / "store.json"))
        stats = run_jobs(
            jobs, workers=2, store=store, chunk_size=1, job_timeout=3.0
        )
        assert stats.failed == 1
        assert sorted(stats.results) == sorted(job.key for job in jobs[1:])
        failure = stats.failures[jobs[0].key]
        assert failure.reason == "timeout"
        store.flush()
        stored = list(store.failures())
        assert len(stored) == 1 and stored[0][1].reason == "timeout"

    def test_inspect_surfaces_failures(self, tmp_path, monkeypatch):
        import subprocess
        import sys

        jobs = _resilience_jobs(2, seed_base=81)
        monkeypatch.setenv("REPRO_TEST_HANG_KEY", jobs[0].key)
        monkeypatch.setenv("REPRO_TEST_HANG_SECONDS", "60")
        path = tmp_path / "store.json"
        store = ResultStore(str(path))
        run_jobs(jobs, workers=2, store=store, chunk_size=1, job_timeout=3.0)
        store.flush()
        completed = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "inspect", str(path)],
            capture_output=True, text=True,
        )
        assert completed.returncode == 0
        assert "FAILED: timeout" in completed.stdout
        assert "1 failed" in completed.stdout
