"""Unit tests for hop sequences and reference paths."""

import pytest

from repro.core.link_types import (
    DRAGONFLY_MIN,
    DRAGONFLY_PAR,
    DRAGONFLY_VAL,
    G,
    L,
    LinkType,
    count_hops,
    hop_counts,
    reference_path,
    reference_vc_requirements,
    sequence_str,
)


class TestHopCounting:
    def test_count_hops_local(self):
        assert count_hops((L, G, L), LinkType.LOCAL) == 2

    def test_count_hops_global(self):
        assert count_hops((L, G, L), LinkType.GLOBAL) == 1

    def test_count_hops_empty(self):
        assert count_hops((), LinkType.LOCAL) == 0

    def test_hop_counts_pair(self):
        assert hop_counts(DRAGONFLY_VAL) == (4, 2)

    def test_hop_counts_par(self):
        assert hop_counts(DRAGONFLY_PAR) == (5, 2)


class TestSequenceStr:
    def test_min_path(self):
        assert sequence_str(DRAGONFLY_MIN) == "l-g-l"

    def test_empty(self):
        assert sequence_str(()) == "(empty)"

    def test_valiant(self):
        assert sequence_str(DRAGONFLY_VAL) == "l-g-l-l-g-l"


class TestReferencePaths:
    @pytest.mark.parametrize(
        "routing,dragonfly,expected",
        [
            ("MIN", True, (2, 1)),
            ("VAL", True, (4, 2)),
            ("PAR", True, (5, 2)),
            ("MIN", False, (2, 0)),
            ("VAL", False, (4, 0)),
            ("PAR", False, (5, 0)),
        ],
    )
    def test_vc_requirements_match_paper(self, routing, dragonfly, expected):
        assert reference_vc_requirements(routing, dragonfly) == expected

    def test_case_insensitive(self):
        assert reference_path("min", True) == DRAGONFLY_MIN

    def test_unknown_routing_raises(self):
        with pytest.raises(ValueError):
            reference_path("UGAL", True)

    def test_dragonfly_min_order(self):
        assert DRAGONFLY_MIN == (L, G, L)

    def test_dragonfly_val_is_two_min_segments(self):
        assert DRAGONFLY_VAL == DRAGONFLY_MIN + DRAGONFLY_MIN
