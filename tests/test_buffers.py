"""Unit and property-based tests for buffer organizations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffers import DamqBuffer, StaticallyPartitionedBuffer


class TestStaticallyPartitioned:
    def test_initial_state(self):
        buf = StaticallyPartitionedBuffer(3, 32)
        assert buf.total_capacity == 96
        assert buf.free_for(0) == 32
        assert buf.total_occupancy() == 0

    def test_per_vc_capacities(self):
        buf = StaticallyPartitionedBuffer(2, [16, 64])
        assert buf.capacity_for(0) == 16
        assert buf.capacity_for(1) == 64

    def test_allocate_release_cycle(self):
        buf = StaticallyPartitionedBuffer(2, 32)
        buf.allocate(0, 8)
        assert buf.occupancy(0) == 8
        assert buf.free_for(0) == 24
        assert buf.free_for(1) == 32
        buf.release(0, 8)
        assert buf.occupancy(0) == 0

    def test_overflow_rejected(self):
        buf = StaticallyPartitionedBuffer(1, 16)
        buf.allocate(0, 16)
        with pytest.raises(ValueError):
            buf.allocate(0, 1)

    def test_underflow_rejected(self):
        buf = StaticallyPartitionedBuffer(1, 16)
        with pytest.raises(ValueError):
            buf.release(0, 1)

    def test_vcs_are_isolated(self):
        buf = StaticallyPartitionedBuffer(2, 16)
        buf.allocate(0, 16)
        assert buf.can_accept(1, 16)
        assert not buf.can_accept(0, 1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            StaticallyPartitionedBuffer(0, 16)
        with pytest.raises(ValueError):
            StaticallyPartitionedBuffer(2, [16])
        with pytest.raises(ValueError):
            StaticallyPartitionedBuffer(1, 0)


class TestDamq:
    def test_private_plus_shared(self):
        buf = DamqBuffer(2, total_capacity=64, private_per_vc=16)
        assert buf.shared_capacity == 32
        assert buf.free_for(0) == 16 + 32

    def test_from_fraction_matches_paper_default(self):
        # 25% shared, 75% private (Table V).
        buf = DamqBuffer.from_fraction(2, 128, 0.75)
        assert buf.private_capacity(0) == 48
        assert buf.shared_capacity == 128 - 96

    def test_private_consumed_before_shared(self):
        buf = DamqBuffer(2, 64, 16)
        buf.allocate(0, 16)
        assert buf.shared_free() == 32
        buf.allocate(0, 8)
        assert buf.shared_free() == 24
        assert buf.free_for(1) == 16 + 24

    def test_one_vc_can_hog_the_shared_pool(self):
        buf = DamqBuffer(2, 64, 0)
        buf.allocate(0, 64)
        assert buf.free_for(1) == 0

    def test_private_reservation_protects_other_vcs(self):
        buf = DamqBuffer(2, 64, 16)
        buf.allocate(0, 48)  # 16 private + 32 shared
        assert buf.free_for(0) == 0
        assert buf.free_for(1) == 16

    def test_release_restores_shared_space(self):
        buf = DamqBuffer(2, 64, 16)
        buf.allocate(0, 48)
        buf.release(0, 32)
        assert buf.occupancy(0) == 16
        assert buf.shared_free() == 32

    def test_overflow_rejected(self):
        buf = DamqBuffer(2, 32, 8)
        buf.allocate(0, 24)
        with pytest.raises(ValueError):
            buf.allocate(1, 16)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            DamqBuffer(2, 16, 16)  # private exceeds total
        with pytest.raises(ValueError):
            DamqBuffer.from_fraction(2, 64, 1.5)


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------

operations = st.lists(
    st.tuples(st.integers(min_value=0, max_value=2),  # vc
              st.integers(min_value=1, max_value=16)),  # packet size
    max_size=60,
)


@settings(max_examples=60, deadline=None)
@given(ops=operations)
def test_static_buffer_never_exceeds_capacity(ops):
    buf = StaticallyPartitionedBuffer(3, 32)
    resident = []
    for vc, size in ops:
        if buf.can_accept(vc, size):
            buf.allocate(vc, size)
            resident.append((vc, size))
        elif resident:
            rvc, rsize = resident.pop(0)
            buf.release(rvc, rsize)
    for vc in range(3):
        assert 0 <= buf.occupancy(vc) <= buf.capacity_for(vc)
    assert buf.total_occupancy() == sum(size for _, size in resident)


@settings(max_examples=60, deadline=None)
@given(ops=operations,
       private=st.integers(min_value=0, max_value=20))
def test_damq_shared_pool_never_oversubscribed(ops, private):
    buf = DamqBuffer(3, total_capacity=96, private_per_vc=private)
    resident = []
    for vc, size in ops:
        if buf.can_accept(vc, size):
            buf.allocate(vc, size)
            resident.append((vc, size))
        elif resident:
            rvc, rsize = resident.pop(0)
            buf.release(rvc, rsize)
    assert buf.shared_free() >= 0
    assert buf.total_occupancy() <= buf.total_capacity
    # Releasing everything must restore the empty state exactly.
    for vc, size in resident:
        buf.release(vc, size)
    assert buf.total_occupancy() == 0
    assert buf.shared_free() == buf.shared_capacity


@settings(max_examples=40, deadline=None)
@given(sizes=st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=10))
def test_damq_free_space_is_monotone_in_private_reservation(sizes):
    """A VC's guaranteed free space never shrinks when its private share grows."""
    low = DamqBuffer(2, 64, 8)
    high = DamqBuffer(2, 64, 16)
    for size in sizes:
        if low.can_accept(0, size):
            low.allocate(0, size)
        if high.can_accept(0, size):
            high.allocate(0, size)
    # VC 1 is idle in both buffers: its guaranteed (private) space is larger
    # in the buffer with the bigger reservation.
    assert high.private_capacity(1) >= low.private_capacity(1)
    assert high.free_for(1) >= high.private_capacity(1)
    assert low.free_for(1) >= low.private_capacity(1)
