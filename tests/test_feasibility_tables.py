"""Tables I-IV must match the paper exactly."""

import pytest

from repro.core.arrangement import VcArrangement
from repro.core.feasibility import (
    PathSupport,
    classify,
    classify_request_reply,
    combined_support,
    escape_sequences,
    table1,
    table2,
    table3,
    table4,
    walk_reference_path,
)
from repro.core.flexvc import FlexVcPolicy
from repro.core.link_types import reference_path
from repro.experiments.tables import (
    EXPECTED_TABLE1,
    EXPECTED_TABLE2,
    EXPECTED_TABLE3,
    EXPECTED_TABLE4,
    matches_paper,
)


class TestTablesMatchPaper:
    def test_table1(self):
        assert table1() == EXPECTED_TABLE1

    def test_table2(self):
        assert table2() == EXPECTED_TABLE2

    def test_table3(self):
        assert table3() == EXPECTED_TABLE3

    def test_table4(self):
        assert table4() == EXPECTED_TABLE4

    def test_matches_paper_helper(self):
        assert matches_paper()


class TestClassification:
    def test_min_always_safe_with_reference_vcs(self):
        assert classify(VcArrangement.single_class(2, 1), "MIN", dragonfly=True) \
            == PathSupport.SAFE

    def test_memory_saving_headline_50_percent(self):
        """Distance-based needs 5+5=10 VCs for VAL+PAR; FlexVC supports them with 3+2=5."""
        arrangement = VcArrangement.request_reply((3, 0), (2, 0))
        for routing in ("MIN", "VAL", "PAR"):
            request, reply = classify_request_reply(arrangement, routing, dragonfly=False)
            assert request != PathSupport.UNSUPPORTED
            assert reply != PathSupport.UNSUPPORTED

    def test_dragonfly_5_3_headline(self):
        """Table IV: 3/2+2/1 = 5/3 supports VAL and PAR opportunistically."""
        arrangement = VcArrangement.request_reply((3, 2), (2, 1))
        for routing in ("VAL", "PAR"):
            request, reply = classify_request_reply(arrangement, routing, dragonfly=True)
            assert request == PathSupport.OPPORTUNISTIC
            assert reply == PathSupport.OPPORTUNISTIC

    def test_combined_support_takes_the_weaker(self):
        assert combined_support(PathSupport.SAFE, PathSupport.OPPORTUNISTIC) \
            == PathSupport.OPPORTUNISTIC
        assert combined_support(PathSupport.UNSUPPORTED, PathSupport.SAFE) \
            == PathSupport.UNSUPPORTED


class TestFeasibilityWalk:
    def test_walk_records_one_vc_per_hop(self):
        policy = FlexVcPolicy(VcArrangement.single_class(4, 2))
        result = walk_reference_path(policy, "VAL", dragonfly=True)
        assert result.feasible
        assert len(result.chosen_vcs) == len(reference_path("VAL", True))

    def test_walk_reports_failed_hop(self):
        policy = FlexVcPolicy(VcArrangement.single_class(2, 1))
        result = walk_reference_path(policy, "VAL", dragonfly=True)
        assert not result.feasible
        assert result.failed_hop >= 0

    def test_escape_sequences_align_with_reference_paths(self):
        for dragonfly in (True, False):
            for routing in ("MIN", "VAL", "PAR"):
                ref = reference_path(routing, dragonfly)
                escapes = escape_sequences(routing, dragonfly)
                assert len(ref) == len(escapes)
                # The escape after the final hop is always empty (consumption).
                assert escapes[-1] == ()


class TestMonotonicity:
    """More VCs can never reduce the support level (sanity property)."""

    ORDER = {PathSupport.UNSUPPORTED: 0, PathSupport.OPPORTUNISTIC: 1, PathSupport.SAFE: 2}

    @pytest.mark.parametrize("routing", ["MIN", "VAL", "PAR"])
    def test_generic_network_monotone_in_vc_count(self, routing):
        previous = -1
        for vcs in range(2, 8):
            support = classify(VcArrangement.single_class(vcs, 0), routing, dragonfly=False)
            assert self.ORDER[support] >= previous
            previous = self.ORDER[support]

    @pytest.mark.parametrize("routing", ["MIN", "VAL", "PAR"])
    def test_dragonfly_monotone_in_local_vcs(self, routing):
        previous = -1
        for local in range(2, 8):
            support = classify(VcArrangement.single_class(local, 2), routing, dragonfly=True)
            assert self.ORDER[support] >= previous
            previous = self.ORDER[support]
