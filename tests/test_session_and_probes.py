"""Phased Session API + probe subsystem: zero-cost invariant, telemetry
consistency, multi-window measurement, drain, and the latency histogram.

The two load-bearing guarantees:

* a **no-probe** session is bit-identical to the legacy one-shot runner
  (which itself is pinned to the PR 2 goldens by test_golden_results.py);
* a **probe-attached** session produces the *same* summary (probes observe,
  never perturb) plus telemetry channels that are consistent with it — the
  time-series accepted-load integral over the measurement window reproduces
  ``phits_delivered`` exactly.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.config import RoutingConfig, SimulationConfig, TrafficConfig
from repro.core.arrangement import VcArrangement
from repro.metrics import LatencyHistogram
from repro.probes import (
    AllocStallProbe,
    LatencyHistogramProbe,
    LinkUtilizationProbe,
    Probe,
    TimeSeriesProbe,
    VcOccupancyProbe,
    make_probes,
)
from repro.session import Session
from repro.simulation import average_results, run_simulation
from repro.metrics import SimulationResult


def tiny_config(**overrides) -> SimulationConfig:
    base = SimulationConfig(warmup_cycles=300, measure_cycles=700, seed=3)
    return dataclasses.replace(base, **overrides).with_load(0.6)


class TestNoProbeEquivalence:
    def test_session_matches_one_shot_runner(self):
        config = tiny_config()
        legacy = run_simulation(config)
        session = Session(config)
        session.warmup()
        result = session.measure()
        assert dataclasses.asdict(result) == dataclasses.asdict(legacy)

    def test_no_probe_session_installs_no_hooks(self):
        session = Session(tiny_config())
        session.warmup()
        session.measure()
        sim = session.sim
        assert sim.traffic.delivery_hook is None
        for router in sim.routers:
            assert router.on_injection is None
            assert router.on_misroute is None
            assert router.on_stall is None
            for port in router.input_ports.values():
                assert port.on_occupancy is None
            for output in router.output_ports.values():
                assert output.link.probe_hook is None

    def test_valiant_with_probes_matches_golden_style_run(self):
        # An adversarial VAL config (misrouting active) with every built-in
        # probe attached must still produce the unprobed summary.
        config = dataclasses.replace(
            SimulationConfig(warmup_cycles=300, measure_cycles=700, seed=3),
            routing=RoutingConfig(algorithm="val", vc_policy="flexvc"),
            arrangement=VcArrangement.single_class(3, 2),
            traffic=TrafficConfig(pattern="adversarial", load=0.6),
        )
        plain = run_simulation(config)
        session = Session(config, probes=make_probes(sorted(
            ("timeseries", "linkutil", "vcocc", "lathist", "stalls"))))
        session.warmup()
        probed = session.measure()
        assert dataclasses.asdict(probed) == dataclasses.asdict(plain)
        assert plain.misrouted_fraction > 0  # probes saw real misroutes


class TestProbeTelemetry:
    @pytest.fixture(scope="class")
    def recorded(self):
        config = tiny_config()
        session = Session(config, probes=[
            TimeSeriesProbe(100), LinkUtilizationProbe(), VcOccupancyProbe(),
            LatencyHistogramProbe(), AllocStallProbe(),
        ])
        session.warmup()
        summary = session.measure()
        session.drain()
        return config, summary, session, session.record()

    def test_timeseries_integral_matches_accepted_load(self, recorded):
        config, summary, session, record = recorded
        rows = record.channel("timeseries")["data"]
        start, end = config.warmup_cycles, config.total_cycles()
        window_phits = sum(r["phits"] for r in rows if start < r["cycle"] <= end)
        assert window_phits == summary.phits_delivered
        integral = sum(r["accepted_load"] * r["elapsed"] for r in rows
                       if start < r["cycle"] <= end)
        assert integral / summary.measured_cycles == pytest.approx(
            summary.accepted_load
        )

    def test_timeseries_covers_drain_phase(self, recorded):
        config, _, session, record = recorded
        rows = record.channel("timeseries")["data"]
        assert rows[-1]["cycle"] > config.total_cycles()  # drain samples exist
        assert rows[-1]["resident"] == 0  # network drained empty

    def test_link_utilization_totals(self, recorded):
        _, _, session, record = recorded
        data = record.channel("link_utilization")["data"]
        assert data  # traffic flowed
        # Channel totals must equal the links' own phit counters.
        sim_links = {
            output.link.name: output.link.phits_transmitted
            for router in session.sim.routers
            for output in router.output_ports.values()
        }
        for name, entry in data.items():
            assert entry["phits"] == sim_links[name]
            assert 0.0 <= entry["utilization"] <= 1.0

    def test_vc_occupancy_bounded_and_positive(self, recorded):
        _, _, session, record = recorded
        data = record.channel("vc_occupancy")["data"]
        assert data
        for entry in data.values():
            assert entry["peak_phits"] > 0
            assert 0.0 <= entry["mean_phits"] <= entry["peak_phits"]

    def test_latency_histogram_consistent_with_summary(self, recorded):
        _, summary, _, record = recorded
        payload = record.channel("latency_histogram")["data"]
        # The probe sees warm-up and drain deliveries too, so its count is a
        # superset of the measured packets.
        assert payload["count"] >= summary.packets_delivered
        assert payload["max"] >= summary.latency_p99

    def test_alloc_stalls_recorded(self, recorded):
        _, _, _, record = recorded
        data = record.channel("alloc_stalls")["data"]
        assert data and all(count > 0 for count in data.values())

    def test_drain_empties_network(self, recorded):
        _, _, session, _ = recorded
        assert session.sim.total_resident_packets() == 0
        assert all(r._source_backlog == 0 and r._injection_resident == 0
                   for r in session.sim.routers)

    def test_provenance(self, recorded):
        config, _, session, record = recorded
        from repro.experiments.orchestrator import config_key

        prov = record.provenance
        assert prov["config_key"] == config_key(config)
        assert prov["engine_cycles"] == session.now
        assert prov["schema_version"] == 2
        assert "TimeSeriesProbe" in prov["probes"]


class TestSessionLifecycle:
    def test_multiple_measurement_windows(self):
        config = tiny_config()
        session = Session(config)
        session.warmup()
        first = session.measure(400, label="early")
        second = session.measure(400, label="late")
        assert [label for label, _ in session.windows] == ["early", "late"]
        # Both windows saw steady-state traffic of the same offered load.
        assert first.packets_delivered > 0 and second.packets_delivered > 0
        assert first.measured_cycles == second.measured_cycles == 400
        assert second.accepted_load == pytest.approx(first.accepted_load, rel=0.25)
        record = session.record()
        assert record.summary == first
        assert len(record.windows) == 2

    def test_window_isolation_from_late_deliveries(self):
        # Packets measured in window 1 but delivered during window 2 must not
        # pollute window 2's latency statistics (epoch stamping).
        config = tiny_config()
        session = Session(config)
        session.warmup()
        session.measure(400)
        metrics = session.sim.metrics
        assert metrics.latency_histogram.count == 0  # reset on close
        second = session.measure(400)
        # window-2 measured deliveries only — cannot exceed window deliveries
        assert metrics.latency_histogram.count == 0  # closed again
        assert second.packets_delivered > 0

    def test_run_until_stepping(self):
        session = Session(tiny_config())
        session.run_until(150)
        assert session.now == 150
        session.run_until(300)
        result = session.measure()
        assert result.packets_delivered > 0

    def test_attach_after_start_rejected(self):
        session = Session(tiny_config())
        session.warmup(10)
        with pytest.raises(RuntimeError):
            session.attach(TimeSeriesProbe())

    def test_duplicate_channel_names_rejected_before_running(self):
        session = Session(tiny_config(), probes=[
            TimeSeriesProbe(1000), TimeSeriesProbe(10),
        ])
        with pytest.raises(ValueError, match="duplicate telemetry channel"):
            session.warmup(10)  # rejected at wire time, not after the run
        assert session.now == 0  # no cycle ran

    def test_record_requires_a_window(self):
        session = Session(tiny_config())
        session.warmup(10)
        with pytest.raises(ValueError):
            session.record()

    def test_config_xor_simulation_required(self):
        from repro.simulation import Simulation

        with pytest.raises(ValueError):
            Session()
        sim = Simulation(tiny_config())
        with pytest.raises(ValueError):
            Session(tiny_config(), simulation=sim)

    def test_custom_probe_phase_transitions(self):
        class PhaseSpy(Probe):
            def __init__(self):
                super().__init__()
                self.phases = []

            def on_phase(self, phase, cycle):
                self.phases.append((phase, cycle))

        spy = PhaseSpy()
        session = Session(tiny_config(), probes=[spy])
        session.warmup()
        session.measure()
        session.drain()
        session.record()
        names = [name for name, _ in spy.phases]
        assert names[0] == "warmup"
        assert "measure" in names and "drain" in names and names[-1] == "done"


class TestLatencyHistogram:
    def test_fine_region_exact_vs_reference_list(self):
        rng = random.Random(11)
        values = [rng.randrange(0, LatencyHistogram.FINE_LIMIT) for _ in range(5000)]
        histogram = LatencyHistogram()
        for value in values:
            histogram.add(value)
        ordered = sorted(values)
        assert histogram.mean() == sum(values) / len(values)
        for fraction in (0.0, 0.5, 0.9, 0.99, 1.0):
            index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
            assert histogram.percentile(fraction) == float(ordered[index])
        assert histogram.values() == ordered

    def test_coarse_region_bounded_relative_error(self):
        rng = random.Random(7)
        values = [rng.randrange(LatencyHistogram.FINE_LIMIT, 1 << 24)
                  for _ in range(2000)]
        histogram = LatencyHistogram()
        for value in values:
            histogram.add(value)
        ordered = sorted(values)
        assert histogram.mean() == sum(values) / len(values)  # mean stays exact
        for fraction in (0.5, 0.99):
            index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
            true = ordered[index]
            approx = histogram.percentile(fraction)
            assert approx <= true
            assert (true - approx) / true <= 1 / (1 << LatencyHistogram.COARSE_SUBBITS)

    def test_memory_is_bounded(self):
        histogram = LatencyHistogram()
        for value in range(0, 1 << 22, 13):
            histogram.add(value)
        assert len(histogram.fine) <= LatencyHistogram.FINE_LIMIT
        # 8 sub-buckets per octave over ~8 coarse octaves
        assert len(histogram.coarse) <= 8 * 64

    def test_empty(self):
        histogram = LatencyHistogram()
        assert histogram.mean() == 0.0
        assert histogram.percentile(0.99) == 0.0
        assert histogram.values() == []

    def test_roundtrip_dict(self):
        histogram = LatencyHistogram()
        for value in (1, 1, 5, 100000):
            histogram.add(value)
        payload = histogram.to_dict()
        assert payload["count"] == 4
        assert payload["total"] == 100007
        assert sum(count for _, count in payload["buckets"]) == 4


class TestAverageResultsSatellite:
    def _result(self, **overrides):
        base = dict(
            offered_load=0.5, accepted_load=0.4, average_latency=100.0,
            latency_p99=200.0, packets_delivered=10, packets_generated=12,
            phits_delivered=80, measured_cycles=100, num_nodes=4,
            misrouted_fraction=0.0, deadlock_suspected=False, extra={},
        )
        base.update(overrides)
        return SimulationResult(**base)

    def test_extra_carried_and_averaged(self):
        a = self._result(extra={"temp": 1.0, "tag": "x", "only_a": 3})
        b = self._result(extra={"temp": 2.0, "tag": "y"})
        merged = average_results([a, b])
        assert merged.extra["temp"] == pytest.approx(1.5)
        assert merged.extra["tag"] == "x"  # non-numeric: first wins
        assert merged.extra["only_a"] == 3.0

    def test_extra_empty_stays_empty(self):
        assert average_results([self._result(), self._result()]).extra == {}

    def test_str_flags_deadlock(self):
        ok = self._result()
        bad = self._result(deadlock_suspected=True)
        assert "DEADLOCK" not in str(ok)
        assert "DEADLOCK" in str(bad)
