"""End-to-end simulation tests: delivery, latency, deadlock freedom and the
qualitative relationships the paper reports."""

from dataclasses import replace

import pytest

from repro.config import RoutingConfig, SimulationConfig, TrafficConfig
from repro.core.arrangement import VcArrangement
from repro.simulation import Simulation, run_seeds, run_simulation


def make_config(**overrides) -> SimulationConfig:
    base = SimulationConfig(warmup_cycles=300, measure_cycles=700)
    return replace(base, **overrides)


class TestBasicDelivery:
    def test_low_load_delivers_everything_offered(self):
        result = run_simulation(make_config().with_load(0.1))
        assert result.accepted_load == pytest.approx(0.1, abs=0.03)
        assert result.packets_delivered > 0
        assert not result.deadlock_suspected

    def test_zero_load_latency_is_plausible(self):
        # Zero-load latency ~ serialization + pipeline + link latencies; with
        # 10/100-cycle links and a <=3-hop Dragonfly it must sit well below the
        # saturated values and above the single-global-link latency.
        result = run_simulation(make_config().with_load(0.05))
        assert 100 < result.average_latency < 350

    def test_packets_conserved_at_low_load(self):
        sim = Simulation(make_config().with_load(0.1))
        result = sim.run()
        # Nothing should be lost: generated >= delivered and the difference is
        # bounded by what can still be in flight.
        assert result.packets_generated >= result.packets_delivered
        in_flight = sim.total_resident_packets()
        assert in_flight < result.packets_generated

    def test_multiple_seeds_average(self):
        results = run_seeds(make_config().with_load(0.2), seeds=2)
        assert len(results) == 2
        assert results[0].accepted_load == pytest.approx(results[1].accepted_load, abs=0.05)


class TestUniformSaturation:
    def test_baseline_min_saturates_below_capacity(self):
        result = run_simulation(make_config().with_load(1.0))
        assert 0.5 < result.accepted_load < 0.95

    def test_flexvc_with_more_vcs_beats_baseline(self):
        baseline = run_simulation(make_config().with_load(1.0))
        flexvc = run_simulation(
            make_config(
                routing=RoutingConfig(vc_policy="flexvc"),
                arrangement=VcArrangement.single_class(4, 2),
            ).with_load(1.0)
        )
        assert flexvc.accepted_load > baseline.accepted_load

    def test_flexvc_same_vcs_at_least_as_good_as_baseline(self):
        baseline = run_simulation(make_config().with_load(1.0))
        flexvc = run_simulation(
            make_config(routing=RoutingConfig(vc_policy="flexvc")).with_load(1.0)
        )
        assert flexvc.accepted_load >= baseline.accepted_load - 0.03


class TestAdversarialTraffic:
    def test_min_routing_collapses_under_adv(self):
        result = run_simulation(
            make_config(traffic=TrafficConfig(pattern="adversarial", load=0.5))
        )
        # All inter-group traffic squeezes through one global link per group:
        # accepted load must be far below the offered 0.5.
        assert result.accepted_load < 0.3

    def test_valiant_rescues_adv(self):
        min_result = run_simulation(
            make_config(traffic=TrafficConfig(pattern="adversarial", load=0.4))
        )
        val_result = run_simulation(
            make_config(
                traffic=TrafficConfig(pattern="adversarial", load=0.4),
                routing=RoutingConfig(algorithm="val"),
                arrangement=VcArrangement.single_class(4, 2),
            )
        )
        assert val_result.accepted_load > min_result.accepted_load
        assert val_result.misrouted_fraction == pytest.approx(1.0)

    def test_valiant_throughput_near_half_capacity(self):
        result = run_simulation(
            make_config(
                traffic=TrafficConfig(pattern="adversarial", load=0.5),
                routing=RoutingConfig(algorithm="val"),
                arrangement=VcArrangement.single_class(4, 2),
            )
        )
        assert 0.3 < result.accepted_load <= 0.55


class TestDeadlockFreedom:
    @pytest.mark.parametrize("vc_policy,arrangement", [
        ("baseline", VcArrangement.single_class(2, 1)),
        ("flexvc", VcArrangement.single_class(2, 1)),
        ("flexvc", VcArrangement.single_class(4, 2)),
    ])
    def test_no_deadlock_at_saturation_min(self, vc_policy, arrangement):
        result = run_simulation(
            make_config(
                routing=RoutingConfig(vc_policy=vc_policy),
                arrangement=arrangement,
            ).with_load(1.0)
        )
        assert not result.deadlock_suspected
        assert result.accepted_load > 0.3

    def test_no_deadlock_opportunistic_valiant(self):
        # FlexVC 3/2: Valiant paths exist only opportunistically; the escape
        # mechanism must keep the network deadlock-free under heavy ADV load.
        result = run_simulation(
            make_config(
                traffic=TrafficConfig(pattern="adversarial", load=0.6),
                routing=RoutingConfig(algorithm="val", vc_policy="flexvc"),
                arrangement=VcArrangement.single_class(3, 2),
            )
        )
        assert not result.deadlock_suspected
        assert result.accepted_load > 0.15


class TestBurstyTraffic:
    def test_bursty_saturates_below_uniform(self):
        uniform = run_simulation(make_config().with_load(1.0))
        bursty = run_simulation(
            make_config(traffic=TrafficConfig(pattern="bursty", load=1.0))
        )
        assert bursty.accepted_load < uniform.accepted_load


class TestRequestReply:
    def test_reactive_traffic_generates_replies(self):
        sim = Simulation(
            make_config(
                traffic=TrafficConfig(load=0.4, reactive=True),
                arrangement=VcArrangement.request_reply((2, 1), (2, 1)),
            )
        )
        sim.run()
        assert sim.traffic is not None
        assert sim.traffic.replies_generated > 0

    def test_flexvc_request_reply_runs_with_fewer_vcs(self):
        result = run_simulation(
            make_config(
                traffic=TrafficConfig(load=0.6, reactive=True),
                routing=RoutingConfig(vc_policy="flexvc"),
                arrangement=VcArrangement.request_reply((3, 2), (2, 1)),
            )
        )
        assert not result.deadlock_suspected
        assert result.accepted_load > 0.3


class TestAdaptiveRouting:
    def _pb_config(self, pattern, *, vc_policy="baseline", min_credits=False,
                   sensing="port"):
        arrangement = (
            VcArrangement.request_reply((4, 2), (4, 2))
            if vc_policy == "baseline"
            else VcArrangement.request_reply((4, 2), (2, 1))
        )
        return make_config(
            traffic=TrafficConfig(pattern=pattern, load=0.4, reactive=True),
            routing=RoutingConfig(algorithm="pb", vc_policy=vc_policy,
                                  pb_sensing=sensing,
                                  pb_min_credits_only=min_credits),
            arrangement=arrangement,
        )

    def test_pb_mostly_minimal_under_uniform(self):
        result = run_simulation(self._pb_config("uniform"))
        assert result.misrouted_fraction < 0.5

    def test_pb_mostly_valiant_under_adversarial(self):
        result = run_simulation(self._pb_config("adversarial"))
        assert result.misrouted_fraction > 0.5

    def test_pb_flexvc_mincred_handles_adv(self):
        result = run_simulation(
            self._pb_config("adversarial", vc_policy="flexvc", min_credits=True)
        )
        assert result.misrouted_fraction > 0.5
        assert result.accepted_load > 0.2
        assert not result.deadlock_suspected

    def test_pb_per_vc_sensing_runs(self):
        result = run_simulation(self._pb_config("adversarial", sensing="vc"))
        assert not result.deadlock_suspected


class TestDamq:
    def test_damq_75_runs_and_is_competitive(self):
        from repro.config import RouterConfig

        static = run_simulation(make_config().with_load(1.0))
        damq = run_simulation(
            make_config(router=RouterConfig(buffer_organization="damq")).with_load(1.0)
        )
        assert not damq.deadlock_suspected
        # DAMQ should be in the same ballpark as the static baseline (paper:
        # only a modest improvement).
        assert damq.accepted_load > 0.8 * static.accepted_load
