"""Sweep-scale wall-clock benchmark: chunked/cached/adaptive vs PR 4 dispatch.

Run directly to (re)generate ``BENCH_sweep.json`` at the repository root::

    PYTHONPATH=src python benchmarks/bench_sweep.py             # full report
    PYTHONPATH=src python benchmarks/bench_sweep.py --rounds 1  # quicker
    PYTHONPATH=src python benchmarks/bench_sweep.py --check-regression

The workload is the ISSUE 5 reference sweep: the Figure 5 series — uniform
*and* adversarial traffic (Baseline, DAMQ 75%, the FlexVC arrangements;
9 series total) x 7 offered loads x 3 seeds at the ``tiny`` scale,
``workers=4`` — 189 jobs.  The load grid spans both sides of every series'
saturation knee (uniform saturates around 0.75 offered, adversarial around
0.4), as the paper's figures do.  Modes measured:

* ``pr4`` — the PR 4 execution strategy re-implemented here: one pool task
  per job, every job building its topology/route table from scratch.  (It
  runs on the current tree, so shared-process wins that predate this PR —
  e.g. the per-process PhaseVcTable — are *included* in the baseline; the
  reported speedups understate the true improvement over the PR 4 commit.)
* ``chunked`` — the current default: series-affine chunked dispatch with the
  per-worker artifact cache.  Bit-identical to ``pr4`` (asserted every run:
  ``results_identical_to_pr4``).
* ``adaptive`` — chunked + the saturation cutoff
  (:class:`~repro.experiments.orchestrator.AdaptiveSettings`): each series
  stops climbing its load ladder after consecutive saturated points and
  extrapolates the rest.  Saturated points are the slowest of the sweep, so
  this is where the large wall-clock factor comes from; the skipped points
  are provenance-flagged, not silently dropped.
* ``converge`` — chunked + convergence-window measurement
  (:class:`~repro.session.ConvergenceSettings`): each executed job measures
  in batch windows and stops when confidence intervals tighten, capped at
  the fixed budget.
* ``adaptive_converge`` — both opt-ins together (the "fast sweep" mode).

``--check-regression`` (the CI perf-smoke gate) re-measures ``pr4``,
``chunked`` and ``adaptive`` and fails on a >30% drop of the chunked
throughput or of the self-normalizing chunked/adaptive speedup ratios
against the committed ``BENCH_sweep.json``.
"""

from __future__ import annotations

import dataclasses
import json
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from pathlib import Path

try:  # pragma: no cover
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.figures import oblivious_series
from repro.experiments.orchestrator import (
    AdaptiveSettings,
    SweepSpec,
    run_jobs,
)
from repro.experiments.runner import TINY
from repro.session import ConvergenceSettings, Session

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"

#: the reference sweep: fig5 series (UN + ADV) x 7 loads x 3 seeds (189 jobs).
LOADS = (0.3, 0.5, 0.65, 0.8, 0.9, 0.95, 1.0)
SEEDS = 3
WORKERS = 4


def reference_spec() -> SweepSpec:
    series = [
        (f"UN {entry.label}", entry.builder)
        for entry in oblivious_series(TINY, "uniform")
    ] + [
        (f"ADV {entry.label}", entry.builder)
        for entry in oblivious_series(TINY, "adversarial")
    ]
    return SweepSpec(loads=LOADS, seeds=SEEDS, series=series, name="bench_sweep")


# ---------------------------------------------------------------------------
# PR 4 baseline: per-job pool tasks, per-job construction
# ---------------------------------------------------------------------------

def _pr4_execute_job(job):
    """The pre-artifact-cache job executor: fresh builds, one job per task."""
    session = Session(job.config)
    session.warmup()
    session.measure()
    return job.key, session.record()


def run_pr4(jobs, workers: int) -> dict:
    """The PR 4 ``run_jobs`` execution strategy (per-job dispatch)."""
    results = {}
    try:
        executor = ProcessPoolExecutor(max_workers=workers)
    except OSError:  # pragma: no cover - restricted environments
        for job in jobs:
            key, record = _pr4_execute_job(job)
            results[key] = record.summary
        return results
    try:
        pending = {executor.submit(_pr4_execute_job, job): job for job in jobs}
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                pending.pop(future)
                key, record = future.result()
                results[key] = record.summary
    finally:
        executor.shutdown()
    return results


# ---------------------------------------------------------------------------
# Measurement harness
# ---------------------------------------------------------------------------

def _best_of(rounds: int, fn):
    """Best wall-clock of N rounds; returns (wall_s, last_payload)."""
    best = float("inf")
    payload = None
    for _ in range(rounds):
        start = time.perf_counter()
        payload = fn()
        best = min(best, time.perf_counter() - start)
    return best, payload


def _interleaved(rounds: int, modes: dict) -> tuple[dict, dict]:
    """Best wall per mode over interleaved rounds.

    Interleaving (round-robin over modes, not N back-to-back runs per mode)
    keeps the comparison fair when the machine's background load drifts over
    the minutes a full measurement takes.
    """
    walls = {name: float("inf") for name in modes}
    payloads = {}
    for _ in range(rounds):
        for name, fn in modes.items():
            start = time.perf_counter()
            payloads[name] = fn()
            walls[name] = min(walls[name], time.perf_counter() - start)
    return walls, payloads


def run_benchmark(rounds: int = 2) -> dict:
    spec = reference_spec()
    jobs = spec.expand()
    total_jobs = len(jobs)

    walls, payloads = _interleaved(rounds, {
        "pr4": lambda: run_pr4(jobs, WORKERS),
        "chunked": lambda: run_jobs(jobs, workers=WORKERS),
        "adaptive": lambda: run_jobs(
            jobs, workers=WORKERS, adaptive=AdaptiveSettings()
        ),
        "converge": lambda: run_jobs(
            jobs, workers=WORKERS, converge=ConvergenceSettings()
        ),
        "adaptive_converge": lambda: run_jobs(
            jobs,
            workers=WORKERS,
            adaptive=AdaptiveSettings(),
            converge=ConvergenceSettings(),
        ),
    })
    pr4_wall = walls["pr4"]
    chunked_wall = walls["chunked"]
    adaptive_wall = walls["adaptive"]
    converge_wall = walls["converge"]
    both_wall = walls["adaptive_converge"]
    pr4_results = payloads["pr4"]
    chunked_stats = payloads["chunked"]
    adaptive_stats = payloads["adaptive"]
    both_stats = payloads["adaptive_converge"]
    identical = all(
        dataclasses.asdict(chunked_stats.results[key])
        == dataclasses.asdict(result)
        for key, result in pr4_results.items()
    )

    report = {
        "sweep": {
            "series": len(spec.series),
            "loads": list(LOADS),
            "seeds": SEEDS,
            "jobs": total_jobs,
            "workers": WORKERS,
            "scale": "tiny",
            "rounds": rounds,
        },
        "pr4_wall_s": round(pr4_wall, 3),
        "pr4_jobs_per_s": round(total_jobs / pr4_wall, 3),
        "chunked_wall_s": round(chunked_wall, 3),
        "chunked_jobs_per_s": round(total_jobs / chunked_wall, 3),
        "speedup_chunked_vs_pr4": round(pr4_wall / chunked_wall, 2),
        "results_identical_to_pr4": identical,
        # A miss is an upper bound on actual construction: series sharing a
        # topology across distinct network keys are still served by the
        # registry-level build cache beneath (DESIGN.md §7).
        "artifact_cache": {
            "hits": chunked_stats.artifact_hits,
            "misses": chunked_stats.artifact_misses,
            "fresh_builds_without_cache": total_jobs,
        },
        "adaptive_wall_s": round(adaptive_wall, 3),
        "speedup_adaptive_vs_pr4": round(pr4_wall / adaptive_wall, 2),
        "adaptive_points": {
            "simulated": adaptive_stats.executed,
            "extrapolated": adaptive_stats.extrapolated,
        },
        "converge_wall_s": round(converge_wall, 3),
        "speedup_converge_vs_pr4": round(pr4_wall / converge_wall, 2),
        "adaptive_converge_wall_s": round(both_wall, 3),
        "speedup_adaptive_converge_vs_pr4": round(pr4_wall / both_wall, 2),
        "adaptive_converge_points": {
            "simulated": both_stats.executed,
            "extrapolated": both_stats.extrapolated,
        },
    }
    return report


# ---------------------------------------------------------------------------
# CI regression gate
# ---------------------------------------------------------------------------

#: entries the gate compares (measured / committed must stay above the
#: ratio); the speedups are self-normalizing, so they are robust to CI
#: runners being faster or slower than the reference machine.
_GATE_ENTRIES = (
    "chunked_jobs_per_s",
    "speedup_chunked_vs_pr4",
    "speedup_adaptive_vs_pr4",
)

#: generous threshold: shared CI runners are noisy, so only a >30% drop
#: against the committed BENCH_sweep.json fails.
_GATE_MIN_RATIO = 0.70


def check_regression() -> int:
    committed = json.loads(OUTPUT.read_text())
    spec = reference_spec()
    jobs = spec.expand()
    total_jobs = len(jobs)

    pr4_wall, _ = _best_of(1, lambda: run_pr4(jobs, WORKERS))
    chunked_wall, chunked_stats = _best_of(1, lambda: run_jobs(jobs, workers=WORKERS))
    adaptive_wall, _ = _best_of(
        1, lambda: run_jobs(jobs, workers=WORKERS, adaptive=AdaptiveSettings())
    )
    measured = {
        "chunked_jobs_per_s": total_jobs / chunked_wall,
        "speedup_chunked_vs_pr4": pr4_wall / chunked_wall,
        "speedup_adaptive_vs_pr4": pr4_wall / adaptive_wall,
    }
    print(
        f"pr4 {pr4_wall:.1f}s, chunked {chunked_wall:.1f}s "
        f"(artifact cache {chunked_stats.artifact_hits} hits / "
        f"{chunked_stats.artifact_misses} misses), adaptive {adaptive_wall:.1f}s"
    )
    failed = False
    for key in _GATE_ENTRIES:
        ratio = measured[key] / committed[key]
        print(f"{key}: measured {measured[key]:.2f} vs committed "
              f"{committed[key]} (x{ratio:.2f})")
        if ratio < _GATE_MIN_RATIO:
            print(f"FAIL: {key} regressed more than "
                  f"{round((1 - _GATE_MIN_RATIO) * 100)}% vs the committed "
                  "baseline")
            failed = True
    return 1 if failed else 0


def main() -> None:
    if "--check-regression" in sys.argv:
        sys.exit(check_regression())
    rounds = 2  # the committed-baseline protocol: best of 2 interleaved
    if "--rounds" in sys.argv:
        rounds = max(1, int(sys.argv[sys.argv.index("--rounds") + 1]))
    report = run_benchmark(rounds=rounds)
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    for key in ("pr4_wall_s", "chunked_wall_s", "speedup_chunked_vs_pr4",
                "results_identical_to_pr4", "adaptive_wall_s",
                "speedup_adaptive_vs_pr4", "converge_wall_s",
                "speedup_converge_vs_pr4", "adaptive_converge_wall_s",
                "speedup_adaptive_converge_vs_pr4"):
        print(f"{key}: {report[key]}")
    cache = report["artifact_cache"]
    print(f"artifact cache: {cache['hits']} hits / {cache['misses']} misses "
          f"(vs {cache['fresh_builds_without_cache']} fresh builds without "
          "cache)")
    points = report["adaptive_points"]
    print(f"adaptive points: {points['simulated']} simulated, "
          f"{points['extrapolated']} extrapolated")
    print(f"wrote {OUTPUT}")


if __name__ == "__main__":
    main()
