"""Figure 9: throughput at 100% load vs VC selection function and VC arrangement.

Expected shape: the request sub-path VC count dominates; among selection
functions JSQ and highest-VC lead, lowest-VC trails, all within a few percent.
"""

from bench_common import SCALE
from repro.experiments import figure9, render_bar_table
from repro.experiments.figures import FIG9_ARRANGEMENTS

ARRANGEMENTS = FIG9_ARRANGEMENTS[:4]  # trimmed for benchmark runtime


def test_figure9(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: figure9(scale=SCALE, arrangements=ARRANGEMENTS),
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print("\n" + render_bar_table(
            "Figure 9: UN request-reply throughput at 100% load", result))
    for row in result.values():
        assert {"Baseline", "DAMQ", "FlexVC jsq", "FlexVC lowest"} <= set(row)
        assert all(0.0 < value <= 1.0 for value in row.values())
    # The selection function has a second-order effect: for every arrangement
    # the spread between policies stays well below the effect of VC counts.
    for label, row in result.items():
        selections = [v for k, v in row.items() if k.startswith("FlexVC")]
        assert max(selections) - min(selections) < 0.25
