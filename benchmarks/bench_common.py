"""Shared benchmark-scale constants (see conftest.py for the rationale)."""

#: Scale used by every figure benchmark.
SCALE = "tiny"

#: Reduced load grids so the full suite stays fast.
SWEEP_LOADS = (0.5, 1.0)
ADAPTIVE_LOADS = (0.4, 0.8)
