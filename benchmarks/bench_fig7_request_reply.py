"""Figure 7: request-reply traffic with oblivious routing and FlexVC VC splits.

Expected shape: FlexVC mitigates the post-saturation congestion of the
baseline and DAMQ; configurations with more VCs in the *request* sub-path
(e.g. 6/4 arranged as 4/3+2/1) outperform those that merely add reply VCs.
"""

import pytest

from bench_common import SCALE, SWEEP_LOADS
from repro.experiments import figure7, render_series_table


@pytest.mark.parametrize("pattern", ["uniform", "adversarial"])
def test_figure7(benchmark, capsys, pattern):
    result = benchmark.pedantic(
        lambda: figure7(scale=SCALE, patterns=(pattern,), loads=SWEEP_LOADS),
        rounds=1, iterations=1,
    )
    series = result[pattern]
    with capsys.disabled():
        print("\n" + render_series_table(f"Figure 7 ({pattern}, request-reply)", series))
    assert all(len(entry.results) == len(SWEEP_LOADS) for entry in series)
    peaks = {entry.label: max(entry.accepted()) for entry in series}
    flexvc_best = max(v for k, v in peaks.items() if k.startswith("FlexVC"))
    assert flexvc_best >= peaks["Baseline"] - 0.03
    assert all(not r.deadlock_suspected for entry in series for r in entry.results)
