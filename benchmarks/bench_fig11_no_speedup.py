"""Figure 11: maximum throughput without router speedup (crossbar speedup = 1).

Expected shape: without speedup HoL blocking dominates, so FlexVC's relative
gains are larger than in Figure 6 (the paper reports up to 37.8% over the
baseline) while DAMQ stays marginal.
"""

import pytest

from bench_common import SCALE
from repro.experiments import figure11, render_bar_table

CAPACITIES = ((128, 512), (256, 1024))


@pytest.mark.parametrize("pattern", ["uniform", "bursty"])
def test_figure11(benchmark, capsys, pattern):
    result = benchmark.pedantic(
        lambda: figure11(scale=SCALE, patterns=(pattern,), capacities=CAPACITIES),
        rounds=1, iterations=1,
    )
    table = result[pattern]
    with capsys.disabled():
        print("\n" + render_bar_table(
            f"Figure 11 ({pattern}) max throughput, no speedup", table))
    largest = table[f"{CAPACITIES[-1][0]}/{CAPACITIES[-1][1]}"]
    flexvc_best = max(v for k, v in largest.items() if k.startswith("FlexVC"))
    assert flexvc_best >= largest["Baseline"] - 0.03
    assert all(0.0 <= v <= 1.0 for row in table.values() for v in row.values())
