"""Tables I-IV: analytical path-feasibility classification under FlexVC."""

from repro.experiments import (
    EXPECTED_TABLE1,
    EXPECTED_TABLE2,
    EXPECTED_TABLE3,
    EXPECTED_TABLE4,
    render_all_tables,
)
from repro.core.feasibility import table1, table2, table3, table4


def test_table1(benchmark):
    result = benchmark(table1)
    assert result == EXPECTED_TABLE1


def test_table2(benchmark):
    result = benchmark(table2)
    assert result == EXPECTED_TABLE2


def test_table3(benchmark):
    result = benchmark(table3)
    assert result == EXPECTED_TABLE3


def test_table4(benchmark):
    result = benchmark(table4)
    assert result == EXPECTED_TABLE4


def test_render_all_tables(benchmark, capsys):
    text = benchmark(render_all_tables)
    with capsys.disabled():
        print("\n" + text)
    assert "Table I" in text and "Table IV" in text
