"""Benchmark harness configuration.

Each benchmark module regenerates the data behind one table or figure of the
paper at the ``tiny`` experiment scale (a 9-group / 72-node Dragonfly, short
warm-up and measurement windows, single seed) so the whole suite completes in
minutes.  The printed rows are the same series the paper plots; absolute
numbers differ from the paper's 16,512-node testbed (see EXPERIMENTS.md) but
the comparative shapes are the reproduction target.

Scale and load grids live in ``bench_common.py``.
"""

from __future__ import annotations

import sys
from pathlib import Path

try:  # pragma: no cover
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
