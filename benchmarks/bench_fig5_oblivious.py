"""Figure 5: latency and accepted load vs offered load under oblivious routing.

Series: Baseline, DAMQ 75%, FlexVC 2/1, FlexVC 4/2, FlexVC 8/4 (MIN for
UN/BURSTY-UN, VAL for ADV).  Expected shape: FlexVC >= baseline at equal VCs,
larger FlexVC VC sets raise saturation throughput further, DAMQ only modestly
above the baseline.
"""

import pytest

from bench_common import SCALE, SWEEP_LOADS
from repro.experiments import figure5, render_series_table, summarize_improvements


@pytest.mark.parametrize("pattern", ["uniform", "bursty", "adversarial"])
def test_figure5(benchmark, capsys, pattern):
    result = benchmark.pedantic(
        lambda: figure5(scale=SCALE, patterns=(pattern,), loads=SWEEP_LOADS),
        rounds=1, iterations=1,
    )
    series = result[pattern]
    with capsys.disabled():
        print("\n" + render_series_table(f"Figure 5 ({pattern})", series))
    # Structural checks: every series produced one result per load and FlexVC
    # with the largest VC set is at least as good as the baseline at saturation.
    assert all(len(entry.results) == len(SWEEP_LOADS) for entry in series)
    peaks = {entry.label: max(entry.accepted()) for entry in series}
    largest_flexvc = [label for label in peaks if label.startswith("FlexVC")][-1]
    assert peaks[largest_flexvc] >= peaks["Baseline"] - 0.05
    improvements = summarize_improvements(series, "Baseline")
    # Under UN/BURSTY the FlexVC advantage is clear; deep-saturation ADV at the
    # tiny benchmark scale is noisy, so only require rough parity there.
    threshold = 0.95 if pattern != "adversarial" else 0.88
    assert improvements[largest_flexvc] > threshold
