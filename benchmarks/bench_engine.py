"""Engine micro-benchmark: cycles/sec across load regimes + idle fast-forward.

Run directly to (re)generate ``BENCH_engine.json`` at the repository root::

    PYTHONPATH=src python benchmarks/bench_engine.py            # full report
    PYTHONPATH=src python benchmarks/bench_engine.py --profile  # + cProfile
    PYTHONPATH=src python benchmarks/bench_engine.py --mem      # construction
                                                # memory (peak RSS + tracemalloc
                                                # deltas, dense vs lazy tables)

Measurements establishing the perf trajectory of the execution core:

* ``uniform_load02_cps`` — steady-state cycles/sec of a tiny-scale uniform
  run at offered load 0.2 (the mostly-idle regime the event-driven scheduler
  targets), measured over a 5,000-cycle run so the one-time route-cache
  warm-up amortizes;
* ``tiny_run_cps`` — the standard 900-cycle tiny run (what the figure
  benchmarks execute), plus its ``SimulationResult`` fingerprint so any
  behavioural drift is visible next to the perf numbers;
* ``tiny_load09_cps`` — the same tiny network at offered load 0.9: the
  congested regime where allocation dominates (most routers active every
  cycle, heads blocked on credits) and where adaptive-routing experiments
  actually operate;
* ``small_adversarial_cps`` — a small-scale Valiant run under adversarial
  traffic at load 0.7: misrouting machinery plus sustained congestion;
* ``idle_fast_forward_cps`` — a zero-load run where the engine skips
  straight across idle cycles.

``seed_baseline`` records the same measurements taken on the polled seed
engine (commit 067f1ce) on the same machine, interleaved with the current
code; ``speedup_*`` are current/seed ratios.  ``pr1_baseline`` records the
PR 1 engine (dict-memoized minimal routes, commit 67d610b) re-measured on
the current machine immediately before the precomputed-route-table change,
so ``speedup_*_vs_pr1`` isolates what the dense tables buy.  ``pr2_baseline``
records the PR 2 code (commit 44945c7) re-measured interleaved with the
session/probe redesign.  ``pr3_baseline`` records the PR 3 code (commit
cc39bab) re-measured interleaved with the incremental-allocator rebuild
(best of 6 alternating rounds on the same machine — only interleaved A/B
numbers are comparable in the shared container); ``ratio_*_vs_pr3`` is what
the array-backed hot-state core and incremental allocation buy, and also
demonstrates that the PR 3 probe-guard regression (``ratio_*_vs_pr2`` < 1.0)
is recovered.

The ``probes`` section compares the same tiny run probes-off (plain
``Simulation.run()``, which is a Session shim) against probes-on
(``Session`` with a TimeSeriesProbe and a LinkUtilizationProbe attached):
``probe_overhead_pct`` is what attaching live telemetry costs.

The ``vectorized_*_cps`` entries (present when numpy is importable) measure
the opt-in vectorized kernel (``Simulation(cfg, backend="vectorized")``,
see :mod:`repro.kernel`) against the python backend on the same three
regimes, **interleaved** — alternating backend rounds in one process — so
the pairs are comparable on a shared machine; ``ratio_vectorized_*`` is
vectorized/python from those interleaved pairs (values below 1.0 mean the
kernel is slower than the python hot path at that scale).
``vectorized_fingerprint_identical`` asserts the tiny-run summary is
bit-identical across backends as part of every benchmark regeneration.
"""

from __future__ import annotations

import dataclasses
import json
import sys
import time
from pathlib import Path

try:  # pragma: no cover
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.arrangement import VcArrangement
from repro.experiments.runner import SMALL, TINY, base_config
from repro.probes import LinkUtilizationProbe, TimeSeriesProbe
from repro.session import Session
from repro.simulation import Simulation

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: cycles/sec of the seed engine measured interleaved with the current code
#: on the reference machine (best of 5, median of 4 interleaved rounds).
SEED_BASELINE = {
    "uniform_load02_cps": 2945,
    "tiny_run_cps": 3111,
    "idle_fast_forward_cps": 20582,
}

#: cycles/sec of the PR 1 engine (per-instance dict route memos) measured
#: interleaved with the route-table code on the same machine (best of 5
#: alternating rounds).
PR1_BASELINE = {
    "uniform_load02_cps": 5118,
    "tiny_run_cps": 4346,
    "idle_fast_forward_cps": 235865748,
}

#: cycles/sec of the PR 2 code (route tables, pre-session API, commit
#: 44945c7) measured interleaved with the session/probe redesign.
PR2_BASELINE = {
    "uniform_load02_cps": 7401,
    "tiny_run_cps": 6725,
}

#: cycles/sec of the PR 3 code (session/probes, commit cc39bab) measured
#: interleaved with the incremental-allocator rebuild on the same machine
#: (best of 6 alternating rounds; the congested entries did not exist before
#: this PR and were measured by running the PR 3 tree under this harness).
PR3_BASELINE = {
    "uniform_load02_cps": 7344,
    "tiny_run_cps": 6489,
    "tiny_load09_cps": 1640,
    "small_adversarial_cps": 1158,
}


def _tiny09_config():
    return base_config(TINY, pattern="uniform", seed=7).with_load(0.9)


def _small_adversarial_config():
    return dataclasses.replace(
        base_config(
            SMALL, pattern="adversarial", algorithm="val", seed=7,
            arrangement=VcArrangement.single_class(4, 2),
        ).with_load(0.7),
        warmup_cycles=300, measure_cycles=900,
    )


def _best_probed_cps(config, cycles: int, repeats: int = 5) -> float:
    """Best-of-N cycles/sec of a Session run with live telemetry attached."""
    best = float("inf")
    for _ in range(repeats):
        session = Session(
            config, probes=[TimeSeriesProbe(100), LinkUtilizationProbe()]
        )
        start = time.perf_counter()
        session.warmup()
        session.measure()
        best = min(best, time.perf_counter() - start)
    return cycles / best


def _best_cps(config, cycles: int, repeats: int = 5) -> tuple[float, Simulation]:
    best = float("inf")
    sim = None
    for _ in range(repeats):
        sim = Simulation(config)
        start = time.perf_counter()
        sim.run()
        best = min(best, time.perf_counter() - start)
    return cycles / best, sim


def _interleaved_backend_cps(
    config, cycles: int, rounds: int = 4
) -> tuple[float, float]:
    """Best-of-N (python_cps, vectorized_cps), alternating backends per round.

    Interleaving is the same A/B protocol the PR-over-PR baselines use: on a
    shared machine only numbers taken alternately in one process are
    comparable.
    """
    best = {"python": float("inf"), "vectorized": float("inf")}
    for _ in range(rounds):
        for backend in ("python", "vectorized"):
            sim = Simulation(config, backend=backend)
            start = time.perf_counter()
            sim.run()
            best[backend] = min(best[backend], time.perf_counter() - start)
    return cycles / best["python"], cycles / best["vectorized"]


def _peak_rss_bytes() -> int:
    """Peak RSS of this process (ru_maxrss is KB on Linux, bytes on macOS)."""
    import resource

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak if sys.platform == "darwin" else peak * 1024


def measure_construction_memory(config, route_table_mode: str = "auto") -> dict:
    """Peak RSS and tracemalloc deltas for network + route-table construction.

    Used by ``--mem`` here and by ``benchmarks/bench_scale.py`` (which records
    the numbers in ``BENCH_scale.json``).  tracemalloc attributes allocations
    to the two construction stages; peak RSS is process-wide and cumulative,
    so compare it across *separate* runs, not across stages in one run.
    """
    import tracemalloc

    from repro.simulation import build_topology

    tracemalloc.start()
    base, _ = tracemalloc.get_traced_memory()
    start = time.perf_counter()
    topology = build_topology(config)
    network_s = time.perf_counter() - start
    after_network, _ = tracemalloc.get_traced_memory()

    from repro.routing.route_table import make_route_table

    start = time.perf_counter()
    table = make_route_table(topology, route_table_mode)
    table_s = time.perf_counter() - start
    after_table, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    stats = table.table_stats()
    return {
        "topology": config.network.topology,
        "routers": topology.num_routers,
        "nodes": topology.num_nodes,
        "route_table_mode": stats["mode"],
        "network_build_s": round(network_s, 3),
        "network_tracemalloc_bytes": after_network - base,
        "route_table_build_s": round(table_s, 3),
        "route_table_tracemalloc_bytes": after_table - after_network,
        "route_state_bytes": table.route_state_bytes(),
        "route_state_bytes_per_router": round(
            table.route_state_bytes() / topology.num_routers
        ),
        "peak_rss_bytes": _peak_rss_bytes(),
    }


def report_memory() -> None:
    """Print construction-memory reports for the standard bench configs."""
    tiny = base_config(TINY, pattern="uniform", seed=7).with_load(0.2)
    small = base_config(SMALL, pattern="uniform", seed=7).with_load(0.2)
    for label, config in (("tiny", tiny), ("small", small)):
        for mode in ("dense", "lazy"):
            mem = measure_construction_memory(config, mode)
            print(f"[{label}/{mode}] routers={mem['routers']} "
                  f"network={mem['network_tracemalloc_bytes']}B "
                  f"route_table={mem['route_table_tracemalloc_bytes']}B "
                  f"route_state={mem['route_state_bytes']}B "
                  f"({mem['route_state_bytes_per_router']}B/router) "
                  f"build={mem['route_table_build_s']}s "
                  f"peak_rss={mem['peak_rss_bytes'] / 1e6:.1f}MB")


def run_benchmark() -> dict:
    steady = dataclasses.replace(
        base_config(TINY, pattern="uniform", seed=7).with_load(0.2),
        warmup_cycles=500, measure_cycles=4500,
    )
    steady_cps, _ = _best_cps(steady, 5000)

    tiny = base_config(TINY, pattern="uniform", seed=7).with_load(0.2)
    tiny_cps, tiny_sim = _best_cps(tiny, tiny.total_cycles())
    fingerprint = dataclasses.asdict(Simulation(tiny).run())
    probed_cps = _best_probed_cps(tiny, tiny.total_cycles())

    tiny09 = _tiny09_config()
    tiny09_cps, _ = _best_cps(tiny09, tiny09.total_cycles())

    adversarial = _small_adversarial_config()
    adversarial_cps, _ = _best_cps(adversarial, adversarial.total_cycles(),
                                   repeats=3)

    idle = dataclasses.replace(
        base_config(TINY, pattern="uniform", seed=7).with_load(0.0),
        warmup_cycles=2000, measure_cycles=8000,
    )
    idle_cps, idle_sim = _best_cps(idle, 10_000, repeats=3)

    report = {
        "uniform_load02_cps": round(steady_cps),
        "tiny_run_cps": round(tiny_cps),
        "tiny_load09_cps": round(tiny09_cps),
        "small_adversarial_cps": round(adversarial_cps),
        "idle_fast_forward_cps": round(idle_cps),
        "idle_cycles_skipped": idle_sim.engine.idle_cycles_skipped,
        "seed_baseline": SEED_BASELINE,
        "speedup_uniform_load02": round(
            steady_cps / SEED_BASELINE["uniform_load02_cps"], 2
        ),
        "speedup_tiny_run": round(tiny_cps / SEED_BASELINE["tiny_run_cps"], 2),
        "speedup_idle_fast_forward": round(
            idle_cps / SEED_BASELINE["idle_fast_forward_cps"], 1
        ),
        "pr1_baseline": PR1_BASELINE,
        "speedup_uniform_load02_vs_pr1": round(
            steady_cps / PR1_BASELINE["uniform_load02_cps"], 2
        ),
        "speedup_tiny_run_vs_pr1": round(
            tiny_cps / PR1_BASELINE["tiny_run_cps"], 2
        ),
        "pr2_baseline": PR2_BASELINE,
        "ratio_uniform_load02_vs_pr2": round(
            steady_cps / PR2_BASELINE["uniform_load02_cps"], 2
        ),
        "ratio_tiny_run_vs_pr2": round(tiny_cps / PR2_BASELINE["tiny_run_cps"], 2),
        "pr3_baseline": PR3_BASELINE,
        "ratio_uniform_load02_vs_pr3": round(
            steady_cps / PR3_BASELINE["uniform_load02_cps"], 2
        ),
        "ratio_tiny_run_vs_pr3": round(
            tiny_cps / PR3_BASELINE["tiny_run_cps"], 2
        ),
        "ratio_tiny_load09_vs_pr3": round(
            tiny09_cps / PR3_BASELINE["tiny_load09_cps"], 2
        ),
        "ratio_small_adversarial_vs_pr3": round(
            adversarial_cps / PR3_BASELINE["small_adversarial_cps"], 2
        ),
        "probes": {
            "probes_off_tiny_cps": round(tiny_cps),
            "probes_on_tiny_cps": round(probed_cps),
            "probe_set": ["TimeSeriesProbe(100)", "LinkUtilizationProbe"],
            "probe_overhead_pct": round((tiny_cps / probed_cps - 1) * 100, 1),
        },
        "tiny_result_fingerprint": fingerprint,
    }

    from repro.kernel import numpy_or_none

    if numpy_or_none() is not None:
        vec_fingerprint = dataclasses.asdict(
            Simulation(tiny, backend="vectorized").run()
        )
        if vec_fingerprint != fingerprint:
            raise AssertionError(
                "vectorized backend fingerprint diverged from python on the "
                "tiny run — backends must be bit-identical"
            )
        report["vectorized_fingerprint_identical"] = True
        for name, config, cycles, rounds in (
            ("uniform_load02", steady, 5000, 2),
            ("tiny_load09", tiny09, tiny09.total_cycles(), 4),
            ("small_adversarial", adversarial, adversarial.total_cycles(), 3),
        ):
            python_cps, vectorized_cps = _interleaved_backend_cps(
                config, cycles, rounds=rounds
            )
            report[f"vectorized_{name}_cps"] = round(vectorized_cps)
            report[f"ratio_vectorized_{name}"] = round(
                vectorized_cps / python_cps, 2
            )
    return report


#: regression-gate entries re-measured by ``--check-regression`` (the CI
#: perf-smoke job); kept here so the gate and the committed baseline always
#: use the same configs and measurement protocol.
_GATE_ENTRIES = ("tiny_run_cps", "tiny_load09_cps")

#: generous threshold: shared CI runners are noisy, so only a >30%
#: cycles/sec drop against the committed BENCH_engine.json fails.
_GATE_MIN_RATIO = 0.70


def check_regression() -> int:
    """Re-measure the gate entries and compare against BENCH_engine.json."""
    committed = json.loads(OUTPUT.read_text())
    tiny = base_config(TINY, pattern="uniform", seed=7).with_load(0.2)
    tiny09 = _tiny09_config()
    measured = {
        "tiny_run_cps": _best_cps(tiny, tiny.total_cycles(), repeats=4)[0],
        "tiny_load09_cps": _best_cps(tiny09, tiny09.total_cycles(), repeats=4)[0],
    }
    failed = False
    for key in _GATE_ENTRIES:
        ratio = measured[key] / committed[key]
        print(f"{key}: measured {measured[key]:.0f} vs committed "
              f"{committed[key]} (x{ratio:.2f})")
        if ratio < _GATE_MIN_RATIO:
            print(f"FAIL: {key} regressed more than "
                  f"{round((1 - _GATE_MIN_RATIO) * 100)}% vs the committed "
                  "baseline")
            failed = True
    return 1 if failed else 0


def profile_congested(top: int = 20, backend: str = "python") -> None:
    """Print cProfile top-N cumulative of the congested tiny run."""
    import cProfile
    import pstats

    config = _tiny09_config()
    sim = Simulation(config, backend=backend)
    print(f"--- profile: backend={sim.backend_active} ---")
    profiler = cProfile.Profile()
    profiler.enable()
    sim.run()
    profiler.disable()
    stats = pstats.Stats(profiler).sort_stats("cumulative")
    stats.print_stats(top)


def main() -> None:
    if "--profile" in sys.argv:
        profile_congested(backend="python")
        from repro.kernel import numpy_or_none

        if "--backend" in sys.argv:
            index = sys.argv.index("--backend")
            backend = sys.argv[index + 1] if index + 1 < len(sys.argv) else ""
            if backend != "python":
                profile_congested(backend=backend)
        elif numpy_or_none() is not None:
            profile_congested(backend="vectorized")
        return
    if "--check-regression" in sys.argv:
        sys.exit(check_regression())
    if "--mem" in sys.argv:
        report_memory()
        return
    report = run_benchmark()
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    for key in ("uniform_load02_cps", "tiny_run_cps", "tiny_load09_cps",
                "small_adversarial_cps", "idle_fast_forward_cps",
                "speedup_uniform_load02", "speedup_tiny_run",
                "speedup_idle_fast_forward",
                "ratio_uniform_load02_vs_pr2", "ratio_tiny_run_vs_pr2",
                "ratio_uniform_load02_vs_pr3", "ratio_tiny_run_vs_pr3",
                "ratio_tiny_load09_vs_pr3", "ratio_small_adversarial_vs_pr3"):
        print(f"{key}: {report[key]}")
    for key in ("vectorized_uniform_load02_cps", "ratio_vectorized_uniform_load02",
                "vectorized_tiny_load09_cps", "ratio_vectorized_tiny_load09",
                "vectorized_small_adversarial_cps",
                "ratio_vectorized_small_adversarial"):
        if key in report:
            print(f"{key}: {report[key]}")
    probes = report["probes"]
    print(f"probes_on_tiny_cps: {probes['probes_on_tiny_cps']} "
          f"(overhead {probes['probe_overhead_pct']}%)")
    print(f"wrote {OUTPUT}")


if __name__ == "__main__":
    main()
