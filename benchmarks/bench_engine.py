"""Engine micro-benchmark: cycles/sec at tiny scale + idle fast-forward.

Run directly to (re)generate ``BENCH_engine.json`` at the repository root::

    PYTHONPATH=src python benchmarks/bench_engine.py

Three measurements establish the perf trajectory of the execution core:

* ``uniform_load02`` — steady-state cycles/sec of a tiny-scale uniform run at
  offered load 0.2 (the mostly-idle regime the event-driven scheduler
  targets), measured over a 5,000-cycle run so the one-time route-cache
  warm-up amortizes;
* ``tiny_run`` — the standard 900-cycle tiny run (what the figure benchmarks
  execute), plus its ``SimulationResult`` fingerprint so any behavioural
  drift is visible next to the perf numbers;
* ``idle_fast_forward`` — a zero-load run where the engine skips straight
  across idle cycles.

``seed_baseline`` records the same measurements taken on the polled seed
engine (commit 067f1ce) on the same machine, interleaved with the current
code; ``speedup_*`` are current/seed ratios.  ``pr1_baseline`` records the
PR 1 engine (dict-memoized minimal routes, commit 67d610b) re-measured on
the current machine immediately before the precomputed-route-table change,
so ``speedup_*_vs_pr1`` isolates what the dense tables buy (they must stay
>= ~1.0: the tables may not regress the hot path).  ``pr2_baseline`` records
the PR 2 code (commit 44945c7) re-measured interleaved with the session/probe
redesign; ``ratio_*_vs_pr2`` guards the no-probe hot path (must stay within
5% of 1.0 — probe dispatch is a single ``is not None`` check per site and
only when subscribed).

The ``probes`` section compares the same tiny run probes-off (plain
``Simulation.run()``, which is now a Session shim) against probes-on
(``Session`` with a TimeSeriesProbe and a LinkUtilizationProbe attached):
``probe_overhead_pct`` is what attaching live telemetry costs.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path

try:  # pragma: no cover
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    import sys

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.runner import TINY, base_config
from repro.probes import LinkUtilizationProbe, TimeSeriesProbe
from repro.session import Session
from repro.simulation import Simulation

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: cycles/sec of the seed engine measured interleaved with the current code
#: on the reference machine (best of 5, median of 4 interleaved rounds).
SEED_BASELINE = {
    "uniform_load02_cps": 2945,
    "tiny_run_cps": 3111,
    "idle_fast_forward_cps": 20582,
}

#: cycles/sec of the PR 1 engine (per-instance dict route memos) measured
#: interleaved with the route-table code on the same machine (best of 5
#: alternating rounds; the shared container is noisy, so only interleaved
#: A/B numbers are comparable — see the verify skill's gotchas).
PR1_BASELINE = {
    "uniform_load02_cps": 5118,
    "tiny_run_cps": 4346,
    "idle_fast_forward_cps": 235865748,
}

#: cycles/sec of the PR 2 code (route tables, pre-session API, commit
#: 44945c7) measured interleaved with the session/probe redesign on the same
#: machine (best of 12 alternating rounds; idle fast-forward is too noisy in
#: the shared container to A/B meaningfully and is guarded by its absolute
#: magnitude instead).
PR2_BASELINE = {
    "uniform_load02_cps": 7401,
    "tiny_run_cps": 6725,
}


def _best_probed_cps(config, cycles: int, repeats: int = 5) -> float:
    """Best-of-N cycles/sec of a Session run with live telemetry attached."""
    best = float("inf")
    for _ in range(repeats):
        session = Session(
            config, probes=[TimeSeriesProbe(100), LinkUtilizationProbe()]
        )
        start = time.perf_counter()
        session.warmup()
        session.measure()
        best = min(best, time.perf_counter() - start)
    return cycles / best


def _best_cps(config, cycles: int, repeats: int = 5) -> tuple[float, Simulation]:
    best = float("inf")
    sim = None
    for _ in range(repeats):
        sim = Simulation(config)
        start = time.perf_counter()
        sim.run()
        best = min(best, time.perf_counter() - start)
    return cycles / best, sim


def run_benchmark() -> dict:
    steady = dataclasses.replace(
        base_config(TINY, pattern="uniform", seed=7).with_load(0.2),
        warmup_cycles=500, measure_cycles=4500,
    )
    steady_cps, _ = _best_cps(steady, 5000)

    tiny = base_config(TINY, pattern="uniform", seed=7).with_load(0.2)
    tiny_cps, tiny_sim = _best_cps(tiny, tiny.total_cycles())
    fingerprint = dataclasses.asdict(Simulation(tiny).run())
    probed_cps = _best_probed_cps(tiny, tiny.total_cycles())

    idle = dataclasses.replace(
        base_config(TINY, pattern="uniform", seed=7).with_load(0.0),
        warmup_cycles=2000, measure_cycles=8000,
    )
    idle_cps, idle_sim = _best_cps(idle, 10_000, repeats=3)

    report = {
        "uniform_load02_cps": round(steady_cps),
        "tiny_run_cps": round(tiny_cps),
        "idle_fast_forward_cps": round(idle_cps),
        "idle_cycles_skipped": idle_sim.engine.idle_cycles_skipped,
        "seed_baseline": SEED_BASELINE,
        "speedup_uniform_load02": round(
            steady_cps / SEED_BASELINE["uniform_load02_cps"], 2
        ),
        "speedup_tiny_run": round(tiny_cps / SEED_BASELINE["tiny_run_cps"], 2),
        "speedup_idle_fast_forward": round(
            idle_cps / SEED_BASELINE["idle_fast_forward_cps"], 1
        ),
        "pr1_baseline": PR1_BASELINE,
        "speedup_uniform_load02_vs_pr1": round(
            steady_cps / PR1_BASELINE["uniform_load02_cps"], 2
        ),
        "speedup_tiny_run_vs_pr1": round(
            tiny_cps / PR1_BASELINE["tiny_run_cps"], 2
        ),
        "pr2_baseline": PR2_BASELINE,
        "ratio_uniform_load02_vs_pr2": round(
            steady_cps / PR2_BASELINE["uniform_load02_cps"], 2
        ),
        "ratio_tiny_run_vs_pr2": round(tiny_cps / PR2_BASELINE["tiny_run_cps"], 2),
        "probes": {
            "probes_off_tiny_cps": round(tiny_cps),
            "probes_on_tiny_cps": round(probed_cps),
            "probe_set": ["TimeSeriesProbe(100)", "LinkUtilizationProbe"],
            "probe_overhead_pct": round((tiny_cps / probed_cps - 1) * 100, 1),
        },
        "tiny_result_fingerprint": fingerprint,
    }
    return report


def main() -> None:
    report = run_benchmark()
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    for key in ("uniform_load02_cps", "tiny_run_cps", "idle_fast_forward_cps",
                "speedup_uniform_load02", "speedup_tiny_run",
                "speedup_idle_fast_forward",
                "speedup_uniform_load02_vs_pr1", "speedup_tiny_run_vs_pr1",
                "ratio_uniform_load02_vs_pr2", "ratio_tiny_run_vs_pr2"):
        print(f"{key}: {report[key]}")
    probes = report["probes"]
    print(f"probes_on_tiny_cps: {probes['probes_on_tiny_cps']} "
          f"(overhead {probes['probe_overhead_pct']}%)")
    print(f"wrote {OUTPUT}")


if __name__ == "__main__":
    main()
