"""Scale benchmark: route-table construction cost and memory vs network size.

Run directly to (re)generate ``BENCH_scale.json`` at the repository root::

    PYTHONPATH=src python benchmarks/bench_scale.py           # full sweep
    PYTHONPATH=src python benchmarks/bench_scale.py --quick   # skip system scale

Each entry measures, for one (scale, topology, route-table mode) triple:

* ``network_build_s`` / ``route_table_build_s`` — construction wall time,
  with tracemalloc deltas attributing allocated bytes to each stage;
* ``route_state_bytes`` / ``route_state_bytes_per_router`` — resident
  route-table state.  Dense tables are Theta(n^2) total (linear per router,
  growing with n); lazy tables are bounded by the LRU capacity, so
  bytes/router *falls* with n once capacity < n — the sub-quadratic claim
  this file exists to document;
* ``warm_cps`` — cycles/sec of a short warmup+measure session (offered
  load 0.2, or 0.1 at system scale, matching the ``system`` experiment
  registry; cold route-column faults included, so this is the honest
  first-session number);
* ``peak_rss_bytes`` — process peak RSS.  Every measurement runs in its own
  subprocess so peaks are per-configuration, not cumulative.

The ``system`` scale is the 10^5-endpoint target of ROADMAP item 4(c): an
h=13 Dragonfly (339 groups, 8,814 routers, 114,582 nodes).  Dense mode is
deliberately not measured there — a dense table alone would be ~1 GB and
take minutes to fill; that infeasibility is the point of the lazy mode.
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
from pathlib import Path

try:  # pragma: no cover
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_scale.json"

#: (label, topology, params, modes, warmup, measure, load) per benchmarked
#: point.  Scales mirror the experiment registry (tiny/large/system Dragonfly)
#: plus a 10^5-endpoint Megafly to show the lazy path is not
#: Dragonfly-specific.
POINTS = [
    ("tiny", "dragonfly", {"h": 2}, ("dense", "lazy"), 300, 600, 0.2),
    ("large", "dragonfly", {"h": 6}, ("dense", "lazy"), 200, 400, 0.2),
    ("system", "dragonfly", {"h": 13}, ("lazy",), 50, 100, 0.1),
    ("system_megafly", "megafly",
     {"spines": 18, "leaves": 18, "h": 18, "nodes_per_router": 18},
     ("lazy",), 50, 100, 0.1),
]


def measure_point(topology: str, params: dict, mode: str,
                  warmup: int, measure: int, load: float) -> dict:
    """Worker-side measurement (runs in a fresh subprocess for clean RSS)."""
    import dataclasses

    from bench_engine import _peak_rss_bytes, measure_construction_memory
    from repro.config import NetworkConfig, SimulationConfig
    from repro.session import Session
    from repro.simulation import Simulation

    config = dataclasses.replace(
        SimulationConfig(network=NetworkConfig(topology=topology,
                                               params=params)),
        warmup_cycles=warmup, measure_cycles=measure,
    ).with_load(load)

    entry = measure_construction_memory(config, mode)

    sim = Simulation(config, route_table_mode=mode)
    session = Session(simulation=sim)
    start = time.perf_counter()
    session.warmup()
    session.measure()
    elapsed = time.perf_counter() - start
    entry.update({
        "warmup_cycles": warmup,
        "measure_cycles": measure,
        "load": load,
        "warm_cps": round((warmup + measure) / elapsed, 1),
        "table_stats": sim.route_table.table_stats(),
        "peak_rss_bytes": _peak_rss_bytes(),
    })
    return entry


def run_sweep(quick: bool = False) -> dict:
    report: dict = {}
    for label, topology, params, modes, warmup, measure, load in POINTS:
        if quick and label.startswith("system"):
            continue
        for mode in modes:
            key = f"{label}_{mode}"
            print(f"measuring {key} ...", flush=True)
            spec = json.dumps({"topology": topology, "params": params,
                               "mode": mode, "warmup": warmup,
                               "measure": measure, "load": load})
            proc = subprocess.run(
                [sys.executable, __file__, "--worker", spec],
                capture_output=True, text=True, check=True,
            )
            report[key] = json.loads(proc.stdout)
            entry = report[key]
            print(f"  routers={entry['routers']} nodes={entry['nodes']} "
                  f"table_build={entry['route_table_build_s']}s "
                  f"route_state={entry['route_state_bytes_per_router']}B/router "
                  f"warm_cps={entry['warm_cps']} "
                  f"peak_rss={entry['peak_rss_bytes'] / 1e6:.0f}MB")
    return report


def main() -> None:
    if "--worker" in sys.argv:
        spec = json.loads(sys.argv[sys.argv.index("--worker") + 1])
        entry = measure_point(spec["topology"], spec["params"], spec["mode"],
                              spec["warmup"], spec["measure"], spec["load"])
        print(json.dumps(entry))
        return
    report = run_sweep(quick="--quick" in sys.argv)
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {OUTPUT}")


if __name__ == "__main__":
    main()
