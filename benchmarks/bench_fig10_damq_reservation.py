"""Figure 10: DAMQ throughput vs per-VC private buffer reservation (UN, MIN).

Expected shape: fully shared DAMQs (0% private) congest or deadlock at
saturation because a single VC can absorb the whole pool; ~75% private
reservation performs best, barely above statically partitioned buffers (100%).
"""

from bench_common import SCALE
from repro.experiments import figure10, render_series_table

FRACTIONS = (0.0, 0.25, 0.75, 1.0)
LOADS = (0.5, 1.0)


def test_figure10(benchmark, capsys):
    series = benchmark.pedantic(
        lambda: figure10(scale=SCALE, fractions=FRACTIONS, loads=LOADS),
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print("\n" + render_series_table("Figure 10: DAMQ private reservation sweep", series))
    peaks = {entry.label: max(entry.accepted()) for entry in series}
    # Large private reservations must not lose to the fully shared pool at
    # saturation (the paper's 75% optimum; 0% deadlocks outright at scale).
    assert peaks["reserved 75%"] >= peaks["reserved 0%"] - 0.05
    assert peaks["reserved 100%"] > 0.3
