"""Figure 6: maximum throughput vs total buffer capacity per port (speedup 2x)."""

import pytest

from bench_common import SCALE
from repro.experiments import figure6, render_bar_table

CAPACITIES = ((128, 512), (256, 1024))


@pytest.mark.parametrize("pattern", ["uniform", "bursty", "adversarial"])
def test_figure6(benchmark, capsys, pattern):
    result = benchmark.pedantic(
        lambda: figure6(scale=SCALE, patterns=(pattern,), capacities=CAPACITIES),
        rounds=1, iterations=1,
    )
    table = result[pattern]
    with capsys.disabled():
        print("\n" + render_bar_table(f"Figure 6 ({pattern}) max throughput", table))
    for capacity_label, row in table.items():
        assert set(row) >= {"Baseline", "DAMQ 75%"}
        assert all(0.0 <= value <= 1.0 for value in row.values())
    # FlexVC with the enlarged VC set should match or beat the baseline at the
    # largest capacity (the paper reports up to 23% improvement).
    largest = table[f"{CAPACITIES[-1][0]}/{CAPACITIES[-1][1]}"]
    flexvc_labels = [label for label in largest if label.startswith("FlexVC")]
    assert max(largest[label] for label in flexvc_labels) >= largest["Baseline"] - 0.03
