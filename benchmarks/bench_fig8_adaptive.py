"""Figure 8: Piggyback source-adaptive routing (sensing variants, FlexVC-minCred).

Expected shape: under UN all FlexVC variants avoid the baseline PB congestion;
under ADV plain FlexVC degrades the congestion signal while FlexVC-minCred
with per-port sensing stays competitive with the baseline despite using 25%
fewer VCs (6/3 instead of 8/4).
"""

import pytest

from bench_common import ADAPTIVE_LOADS, SCALE
from repro.experiments import figure8, render_series_table


@pytest.mark.parametrize("pattern", ["uniform", "adversarial"])
def test_figure8(benchmark, capsys, pattern):
    result = benchmark.pedantic(
        lambda: figure8(scale=SCALE, patterns=(pattern,), loads=ADAPTIVE_LOADS),
        rounds=1, iterations=1,
    )
    series = result[pattern]
    with capsys.disabled():
        print("\n" + render_series_table(f"Figure 8 ({pattern}, PB adaptive)", series))
    labels = {entry.label for entry in series}
    assert any("minCred" in label for label in labels)
    assert all(len(entry.results) == len(ADAPTIVE_LOADS) for entry in series)
    assert all(not r.deadlock_suspected for entry in series for r in entry.results)
    if pattern == "adversarial":
        # Adaptive routing must actually misroute under ADV traffic.
        for entry in series:
            if entry.label.startswith("PB"):
                assert max(r.misrouted_fraction for r in entry.results) > 0.3
