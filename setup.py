"""Setuptools shim.

The offline environment used for this reproduction has no ``wheel`` package,
so PEP 517 editable installs fail with ``invalid command 'bdist_wheel'``.
Keeping a ``setup.py`` lets ``pip install -e . --no-use-pep517
--no-build-isolation`` (and plain ``python setup.py develop``) work; all
project metadata still lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
