#!/usr/bin/env python3
"""Bursty data-centre style traffic: buffer organizations under BURSTY-UN.

The paper motivates FlexVC partly by its ability to absorb traffic bursts
without dedicating a DAMQ-style shared memory to each port.  This example
drives the scaled Dragonfly with the two-state Markov ON/OFF traffic model
(average burst of 5 packets towards a fixed destination, as fitted to
data-centre traces) and compares, at a configurable load:

* the statically partitioned baseline,
* a DAMQ with the paper's 75% private reservation,
* FlexVC with the same 2/1 VC set, and
* FlexVC exploiting the 4/2 set that Valiant routing would need anyway.

With ``--timeseries`` the FlexVC 4/2 scenario is additionally run through a
phased Session with a :class:`~repro.probes.TimeSeriesProbe` attached —
warm-up, a measurement window, then a drain phase with injection stopped —
and a per-interval view of burst absorption (resident packets, accepted
load, latency) and post-burst recovery is printed.  This transient view is
exactly what the one-shot API could not express.

Run:  python examples/bursty_datacenter_traffic.py [--loads 0.3 0.5 0.7]
      python examples/bursty_datacenter_traffic.py --timeseries
"""

import argparse
import sys
from dataclasses import replace
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import (  # noqa: E402
    RouterConfig,
    RoutingConfig,
    Session,
    SimulationConfig,
    TimeSeriesProbe,
    TrafficConfig,
    VcArrangement,
    run_simulation,
)


def transient_view(config: SimulationConfig, load: float, interval: int) -> None:
    """Session-driven transient demo: measure the burst regime, then drain."""
    probe = TimeSeriesProbe(interval)
    session = Session(config.with_load(load), probes=[probe])
    session.warmup()
    result = session.measure()
    drain_cycles = session.drain()
    record = session.record()

    print(f"\nTransient view (FlexVC 4/2, load {load:.2f}, "
          f"{interval}-cycle samples) — burst absorption and recovery:")
    print(f"{'cycle':>8s} {'phase':>8s} {'accepted':>9s} {'latency':>8s} "
          f"{'resident':>9s}")
    warmup_end = config.warmup_cycles
    measure_end = session.windows[0][1].measured_cycles + warmup_end
    for row in record.channel("timeseries")["data"]:
        cycle = row["cycle"]
        phase = ("warmup" if cycle <= warmup_end
                 else "measure" if cycle <= measure_end else "drain")
        print(f"{cycle:>8d} {phase:>8s} {row['accepted_load']:>9.3f} "
              f"{row['mean_latency']:>8.1f} {row['resident']:>9d}")
    print(f"\nsteady-state summary: {result}")
    print(f"drain: network empty after {drain_cycles} cycles with injection "
          "stopped (watch 'resident' fall back to 0 — the recovery tail "
          "after the last burst).")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--loads", type=float, nargs="+", default=[0.3, 0.5, 0.7])
    parser.add_argument("--burst-length", type=float, default=5.0)
    parser.add_argument("--cycles", type=int, default=2000)
    parser.add_argument("--warmup", type=int, default=1000)
    parser.add_argument("--timeseries", action="store_true",
                        help="run the FlexVC 4/2 scenario with a "
                             "TimeSeriesProbe and print the transient view")
    parser.add_argument("--interval", type=int, default=200,
                        help="time-series sample interval in cycles "
                             "(default: 200)")
    args = parser.parse_args()

    base = SimulationConfig(
        warmup_cycles=args.warmup,
        measure_cycles=args.cycles,
        traffic=TrafficConfig(pattern="bursty", load=0.5,
                              burst_length=args.burst_length),
    )
    scenarios = {
        "Baseline 2/1": base,
        "DAMQ 75% private": replace(
            base, router=RouterConfig(buffer_organization="damq")),
        "FlexVC 2/1": replace(base, routing=RoutingConfig(vc_policy="flexvc")),
        "FlexVC 4/2": replace(
            base,
            routing=RoutingConfig(vc_policy="flexvc"),
            arrangement=VcArrangement.single_class(4, 2)),
    }

    print(f"BURSTY-UN traffic (average burst {args.burst_length:.0f} packets) "
          "on a scaled Dragonfly\n")
    header = f"{'scenario':24s}" + "".join(
        f"  load {load:.2f} (acc / lat)" for load in args.loads)
    print(header)
    for label, config in scenarios.items():
        cells = []
        for load in args.loads:
            result = run_simulation(config.with_load(load))
            cells.append(f"  {result.accepted_load:.3f} / {result.average_latency:6.1f}")
        print(f"{label:24s}" + "".join(f"{cell:>22s}" for cell in cells))

    print("\nExpected shape (Figures 5b and 6b): latency differences appear"
          " well below saturation because bursts congest individual VCs;"
          " FlexVC reduces latency and raises the saturation point more than"
          " the DAMQ does, and the gap grows with the number of VCs it can"
          " spread a burst over.")

    if args.timeseries:
        transient_view(scenarios["FlexVC 4/2"], args.loads[-1], args.interval)


if __name__ == "__main__":
    main()
