#!/usr/bin/env python3
"""Bursty data-centre style traffic: buffer organizations under BURSTY-UN.

The paper motivates FlexVC partly by its ability to absorb traffic bursts
without dedicating a DAMQ-style shared memory to each port.  This example
drives the scaled Dragonfly with the two-state Markov ON/OFF traffic model
(average burst of 5 packets towards a fixed destination, as fitted to
data-centre traces) and compares, at a configurable load:

* the statically partitioned baseline,
* a DAMQ with the paper's 75% private reservation,
* FlexVC with the same 2/1 VC set, and
* FlexVC exploiting the 4/2 set that Valiant routing would need anyway.

Run:  python examples/bursty_datacenter_traffic.py [--loads 0.3 0.5 0.7]
"""

import argparse
import sys
from dataclasses import replace
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import (  # noqa: E402
    RouterConfig,
    RoutingConfig,
    SimulationConfig,
    TrafficConfig,
    VcArrangement,
    run_simulation,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--loads", type=float, nargs="+", default=[0.3, 0.5, 0.7])
    parser.add_argument("--burst-length", type=float, default=5.0)
    parser.add_argument("--cycles", type=int, default=2000)
    parser.add_argument("--warmup", type=int, default=1000)
    args = parser.parse_args()

    base = SimulationConfig(
        warmup_cycles=args.warmup,
        measure_cycles=args.cycles,
        traffic=TrafficConfig(pattern="bursty", load=0.5,
                              burst_length=args.burst_length),
    )
    scenarios = {
        "Baseline 2/1": base,
        "DAMQ 75% private": replace(
            base, router=RouterConfig(buffer_organization="damq")),
        "FlexVC 2/1": replace(base, routing=RoutingConfig(vc_policy="flexvc")),
        "FlexVC 4/2": replace(
            base,
            routing=RoutingConfig(vc_policy="flexvc"),
            arrangement=VcArrangement.single_class(4, 2)),
    }

    print(f"BURSTY-UN traffic (average burst {args.burst_length:.0f} packets) "
          "on a scaled Dragonfly\n")
    header = f"{'scenario':24s}" + "".join(
        f"  load {load:.2f} (acc / lat)" for load in args.loads)
    print(header)
    for label, config in scenarios.items():
        cells = []
        for load in args.loads:
            result = run_simulation(config.with_load(load))
            cells.append(f"  {result.accepted_load:.3f} / {result.average_latency:6.1f}")
        print(f"{label:24s}" + "".join(f"{cell:>22s}" for cell in cells))

    print("\nExpected shape (Figures 5b and 6b): latency differences appear"
          " well below saturation because bursts congest individual VCs;"
          " FlexVC reduces latency and raises the saturation point more than"
          " the DAMQ does, and the gap grows with the number of VCs it can"
          " spread a burst over.")


if __name__ == "__main__":
    main()
