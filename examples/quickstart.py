#!/usr/bin/env python3
"""Quickstart: FlexVC vs the distance-based baseline on a scaled Dragonfly.

Runs three short simulations under uniform traffic at saturation load —
baseline 2/1 VCs, FlexVC 2/1 VCs (same resources), FlexVC 4/2 VCs (the
resources a Valiant-capable router already provisions) — and prints the
accepted throughput and latency of each, mirroring the headline comparison of
Figure 5a of the paper.

Runs are driven through the phased Session API (warm-up, then one
steady-state measurement window); ``session.record()`` shows the versioned
RunRecord provenance that the experiment store persists.

Run:  python examples/quickstart.py [--load 1.0] [--cycles 2500]
"""

import argparse
import sys
from dataclasses import replace
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import (  # noqa: E402
    RoutingConfig,
    Session,
    SimulationConfig,
    VcArrangement,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--load", type=float, default=1.0,
                        help="offered load in phits/node/cycle (default: 1.0)")
    parser.add_argument("--cycles", type=int, default=2500,
                        help="measured cycles after warm-up (default: 2500)")
    parser.add_argument("--warmup", type=int, default=1000)
    args = parser.parse_args()

    base = SimulationConfig(
        warmup_cycles=args.warmup, measure_cycles=args.cycles
    ).with_load(args.load)

    configs = {
        "Baseline (distance-based, 2/1 VCs)": base,
        "FlexVC 2/1 VCs (same buffers)": replace(
            base, routing=RoutingConfig(vc_policy="flexvc")
        ),
        "FlexVC 4/2 VCs (VAL-provisioned buffers)": replace(
            base,
            routing=RoutingConfig(vc_policy="flexvc"),
            arrangement=VcArrangement.single_class(4, 2),
        ),
    }

    print("Scaled Dragonfly (h=2: 9 groups, 36 routers, 72 nodes), "
          f"uniform traffic, offered load {args.load:.2f}\n")
    baseline_throughput = None
    record = None
    for label, config in configs.items():
        session = Session(config)
        session.warmup()
        result = session.measure()
        record = session.record()
        if baseline_throughput is None:
            baseline_throughput = result.accepted_load
        gain = result.accepted_load / baseline_throughput
        print(f"{label:44s} accepted={result.accepted_load:.3f} phits/node/cycle  "
              f"latency={result.average_latency:6.1f} cycles  (x{gain:.2f} vs baseline)")

    assert record is not None
    provenance = record.provenance
    print(f"\nEach line is one RunRecord (schema v{record.schema_version}): "
          f"last run covered {provenance['engine_cycles']} engine cycles in "
          f"{provenance['wall_time_s']:.2f}s wall "
          f"(config {provenance['config_key'][:12]}...).")
    print("The paper reports +12% for FlexVC at equal VCs and +23% when the "
          "4/2 VC set is exploited (Figure 5a / Section V-A); expect the same "
          "ordering here, with absolute values shifted by the scaled network.")


if __name__ == "__main__":
    main()
