#!/usr/bin/env python3
"""Adversarial traffic and adaptive routing: the FlexVC-minCred story.

The scenario the paper's introduction motivates: a Dragonfly running a
communication pattern where every group hammers the single global link to the
next group (ADV+1).  Minimal routing collapses, Valiant routing fixes it
obliviously, and Piggyback source-adaptive routing should match Valiant under
ADV while staying minimal under benign traffic — *if* its congestion sensing
still works.  This example compares, under ADV request-reply traffic:

* MIN (baseline buffers)            — collapses,
* VAL (oblivious)                    — the reference,
* PB baseline, per-VC sensing        — the paper's best conventional variant,
* PB + FlexVC, per-VC sensing        — sensing degraded by buffer sharing,
* PB + FlexVC-minCred, per-port      — sensing restored with 25% fewer VCs.

Run:  python examples/adversarial_adaptive_routing.py [--load 0.4]
"""

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import (  # noqa: E402
    RoutingConfig,
    SimulationConfig,
    TrafficConfig,
    VcArrangement,
    run_simulation,
)
from dataclasses import replace  # noqa: E402


def build(load: float, cycles: int, warmup: int, *, algorithm: str,
          vc_policy: str = "baseline", arrangement=None, sensing: str = "port",
          min_credits: bool = False) -> SimulationConfig:
    if arrangement is None:
        arrangement = VcArrangement.request_reply((4, 2), (4, 2))
    return SimulationConfig(
        warmup_cycles=warmup,
        measure_cycles=cycles,
        traffic=TrafficConfig(pattern="adversarial", load=load, reactive=True),
        routing=RoutingConfig(algorithm=algorithm, vc_policy=vc_policy,
                              pb_sensing=sensing, pb_min_credits_only=min_credits),
        arrangement=arrangement,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--load", type=float, default=0.4)
    parser.add_argument("--cycles", type=int, default=2000)
    parser.add_argument("--warmup", type=int, default=1000)
    args = parser.parse_args()
    load, cycles, warmup = args.load, args.cycles, args.warmup

    scenarios = {
        "MIN (2/1+2/1 VCs)": build(
            load, cycles, warmup, algorithm="min",
            arrangement=VcArrangement.request_reply((2, 1), (2, 1))),
        "VAL oblivious (4/2+4/2 VCs)": build(load, cycles, warmup, algorithm="val"),
        "PB baseline, per-VC sensing (8/4 VCs)": build(
            load, cycles, warmup, algorithm="pb", sensing="vc"),
        "PB FlexVC, per-VC sensing (6/3 VCs)": build(
            load, cycles, warmup, algorithm="pb", vc_policy="flexvc", sensing="vc",
            arrangement=VcArrangement.request_reply((4, 2), (2, 1))),
        "PB FlexVC-minCred, per-port (6/3 VCs)": build(
            load, cycles, warmup, algorithm="pb", vc_policy="flexvc", sensing="port",
            min_credits=True,
            arrangement=VcArrangement.request_reply((4, 2), (2, 1))),
    }

    print(f"ADV+1 request-reply traffic on a scaled Dragonfly, offered load {load:.2f}\n")
    print(f"{'scenario':46s} {'accepted':>9s} {'latency':>9s} {'misrouted':>10s}")
    for label, config in scenarios.items():
        result = run_simulation(config)
        print(f"{label:46s} {result.accepted_load:9.3f} "
              f"{result.average_latency:9.1f} {result.misrouted_fraction:10.2f}")

    print("\nExpected shape (Figure 8c): MIN collapses; VAL and the adaptive"
          " variants track each other; plain FlexVC loses some ground because"
          " minimal and Valiant packets share buffers and blur the congestion"
          " signal; FlexVC-minCred recovers it while using 25% fewer VCs.")


if __name__ == "__main__":
    main()
