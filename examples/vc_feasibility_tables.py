#!/usr/bin/env python3
"""Print Tables I-IV: which routings FlexVC supports with how many VCs.

This example needs no simulation at all — it exercises the analytical side of
the library (``repro.core.feasibility``) that answers questions like "can I
run Valiant on a Dragonfly with only 3/2 VCs?" (opportunistically, yes) or
"how many VCs do request-reply exchanges need?" (3+2=5 instead of the
baseline's 10 in a generic diameter-2 network: the 50% saving headline).

Run:  python examples/vc_feasibility_tables.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import VcArrangement, classify, classify_request_reply  # noqa: E402
from repro.experiments import render_all_tables  # noqa: E402


def main() -> None:
    print(render_all_tables())

    print("\nAd-hoc queries")
    print("--------------")
    df_3_2 = VcArrangement.single_class(3, 2)
    print(f"Dragonfly, VAL routing with {df_3_2} VCs:",
          classify(df_3_2, "VAL", dragonfly=True).value)

    five = VcArrangement.request_reply((3, 0), (2, 0))
    request, reply = classify_request_reply(five, "VAL", dragonfly=False)
    print(f"Diameter-2 network, request-reply VAL with {five.label()} VCs:",
          f"requests {request.value}, replies {reply.value}",
          "(the baseline would need 5+5=10 VCs: a 50% buffer saving)")

    df_5_3 = VcArrangement.request_reply((3, 2), (2, 1))
    request, reply = classify_request_reply(df_5_3, "PAR", dragonfly=True)
    print(f"Dragonfly, request-reply PAR with {df_5_3.label()} VCs:",
          f"requests {request.value}, replies {reply.value}",
          "(baseline needs 10/4)")


if __name__ == "__main__":
    main()
